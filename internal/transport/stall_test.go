package transport

import (
	"net"
	"testing"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

// blackholeListener accepts connections and never reads from them: the
// archetypal dead peer. Once the kernel socket buffers fill, a synchronous
// writer would block forever.
func blackholeListener(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c) // hold open, never read
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	return ln.Addr().String(), func() {
		close(done)
		ln.Close()
		for _, c := range conns {
			c.Close()
		}
	}
}

// TestDeadPeerDoesNotStallInbound is the tentpole's transport regression:
// a replica whose handler fans out to an unresponsive peer must keep
// handling inbound messages at full speed. Before the async writers, the
// event loop itself dialed and flushed inside Send, so one wedged peer
// (dial timeout or full TCP buffer) froze the whole replica.
func TestDeadPeerDoesNotStallInbound(t *testing.T) {
	deadAddr, stopDead := blackholeListener(t)
	defer stopDead()
	deadID := ids.NewID(7, 7)

	// Replica under test: every inbound Request triggers a large send to
	// the dead peer plus a reply to the requester.
	tr := &trampolineT{}
	srv, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", map[ids.ID]string{deadID: deadAddr}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	big := wire.P2a{Ballot: 1, Slot: 1, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: make([]byte, 1<<20)}}}
	tr.h = func(from ids.ID, m wire.Msg) {
		if req, ok := m.(wire.Request); ok {
			srv.Send(deadID, big) // would wedge a synchronous writer
			srv.Send(from, wire.Reply{ClientID: req.Cmd.ClientID, Seq: req.Cmd.Seq, OK: true})
		}
	}

	cl := &collector{}
	client, err := ListenTCP(ids.NewID(999, 1), "127.0.0.1:0", map[ids.ID]string{srv.ID(): srv.Addr()}, cl)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 32 // 32 MiB at the dead peer: far beyond any socket buffer
	start := time.Now()
	for i := 1; i <= n; i++ {
		client.Send(srv.ID(), wire.Request{Cmd: kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: uint64(i)}})
	}
	waitFor(t, func() bool { return cl.count() >= n }, "inbound handling stalled behind a dead peer")
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("handling %d requests took %v with a dead peer in the fan-out", n, elapsed)
	}
}

// TestSendToUnreachableAddrReturnsImmediately: Send must never block the
// caller, even when the peer's address refuses connections.
func TestSendToUnreachableAddrReturnsImmediately(t *testing.T) {
	// A listener we close immediately: connection refused thereafter.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	refusedAddr := ln.Addr().String()
	ln.Close()

	srv, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", map[ids.ID]string{ids.NewID(7, 7): refusedAddr}, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	start := time.Now()
	for i := 0; i < 5000; i++ {
		srv.Send(ids.NewID(7, 7), wire.P1a{Ballot: 1})
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("5000 sends to an unreachable peer took %v; Send must enqueue-and-return", elapsed)
	}
}

// TestTCPBroadcast: one Broadcast call reaches every listed peer
// (including self) with the message intact.
func TestTCPBroadcast(t *testing.T) {
	ids3 := []ids.ID{ids.NewID(1, 1), ids.NewID(1, 2), ids.NewID(1, 3)}
	addrs := make(map[ids.ID]string)
	cols := make(map[ids.ID]*collector)
	nodes := make(map[ids.ID]*TCPNode)
	for _, id := range ids3 {
		c := &collector{}
		n, err := ListenTCP(id, "127.0.0.1:0", addrs, c)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		cols[id], nodes[id] = c, n
		addrs[id] = n.Addr()
	}
	for _, n := range nodes {
		for id, a := range addrs {
			n.RegisterAddr(id, a)
		}
	}
	want := wire.P2a{Ballot: 5, Slot: 9, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 3, Value: []byte("bcast")}}}
	nodes[ids3[0]].Broadcast(ids3, want)
	for _, id := range ids3 {
		id := id
		waitFor(t, func() bool { return cols[id].count() == 1 }, "broadcast recipient missed the message")
		cols[id].mu.Lock()
		got, ok := cols[id].got[0].(wire.P2a)
		cols[id].mu.Unlock()
		if !ok || got.Slot != 9 || len(got.Cmds) != 1 || string(got.Cmds[0].Value) != "bcast" {
			t.Errorf("node %v got %+v", id, got)
		}
	}
}

// TestEphemeralPeerReaped: a client known only through its inbound
// connection must not leave a peer record (queue + writer goroutine)
// behind after it disconnects — churning clients would otherwise grow the
// peer table and goroutine count without bound.
func TestEphemeralPeerReaped(t *testing.T) {
	srv, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", nil, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 20; i++ {
		clID := ids.NewID(900, i+1)
		cl, err := ListenTCP(clID, "127.0.0.1:0", map[ids.ID]string{srv.ID(): srv.Addr()}, &collector{})
		if err != nil {
			t.Fatal(err)
		}
		cl.Send(srv.ID(), wire.P1a{Ballot: 1}) // creates a reverse-route peer at srv
		waitFor(t, func() bool {
			srv.connMu.Lock()
			_, ok := srv.peers[clID]
			srv.connMu.Unlock()
			return ok
		}, "reverse-route peer never appeared")
		cl.Close()
		waitFor(t, func() bool {
			srv.connMu.Lock()
			_, ok := srv.peers[clID]
			srv.connMu.Unlock()
			return !ok
		}, "ephemeral peer record not reaped after disconnect")
	}
}

// TestBroadcastWithDeadRecipient: shared-frame refcounting must survive a
// mix of live and dead recipients over many rounds (no double release, no
// corruption of the live peer's frames).
func TestBroadcastWithDeadRecipient(t *testing.T) {
	deadAddr, stopDead := blackholeListener(t)
	defer stopDead()
	deadID := ids.NewID(7, 7)

	live := &collector{}
	liveNode, err := ListenTCP(ids.NewID(1, 2), "127.0.0.1:0", nil, live)
	if err != nil {
		t.Fatal(err)
	}
	defer liveNode.Close()

	src, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", map[ids.ID]string{
		deadID:        deadAddr,
		liveNode.ID(): liveNode.Addr(),
	}, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	const rounds = 200
	m := wire.P2a{Ballot: 2, Slot: 1, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: make([]byte, 4096)}}}
	for i := 0; i < rounds; i++ {
		src.Broadcast([]ids.ID{deadID, liveNode.ID()}, m)
	}
	// The live peer must receive most frames; the dead peer's queue may
	// drop overflow, but that must never corrupt the shared frames.
	waitFor(t, func() bool { return live.count() >= rounds/2 }, "live recipient starved by dead co-recipient")
	live.mu.Lock()
	defer live.mu.Unlock()
	for _, got := range live.got {
		p, ok := got.(wire.P2a)
		if !ok || len(p.Cmds) != 1 || len(p.Cmds[0].Value) != 4096 {
			t.Fatalf("corrupt broadcast frame: %+v", got)
		}
	}
}
