package transport

import (
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wire"
)

// transportGoroutines returns the stacks of live goroutines running inside
// this package — a dependency-free goleak: after every node is closed, none
// may remain.
func transportGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var got []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "internal/transport.") &&
			!strings.Contains(g, "transportGoroutines") &&
			!strings.Contains(g, "testing.tRunner") {
			got = append(got, g)
		}
	}
	return got
}

func waitNoTransportGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked := transportGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d transport goroutines leaked after Close:\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseReapsAllGoroutines drives a 3-node mesh plus an ephemeral client
// through real traffic, closes everything, and asserts no event-loop,
// writer, reader or accept goroutine survives.
func TestCloseReapsAllGoroutines(t *testing.T) {
	members := []ids.ID{ids.NewID(1, 1), ids.NewID(1, 2), ids.NewID(1, 3)}
	addrs := make(map[ids.ID]string)
	nodes := make(map[ids.ID]*TCPNode)
	for _, id := range members {
		n, err := ListenTCP(id, "127.0.0.1:0", addrs, &collector{})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = n
		addrs[id] = n.Addr()
	}
	for _, n := range nodes {
		for id, a := range addrs {
			n.RegisterAddr(id, a)
		}
	}
	cl := &collector{}
	client, err := ListenTCP(ids.NewID(999, 1), "127.0.0.1:0", addrs, cl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		nodes[members[0]].Broadcast(members, wire.P2a{Ballot: 1, Slot: uint64(i)})
		client.Send(members[i%3], wire.Request{Cmd: kvstore.Command{Op: kvstore.Put, Key: 1, ClientID: 1, Seq: uint64(i)}})
	}
	time.Sleep(50 * time.Millisecond)
	client.Close()
	for _, n := range nodes {
		n.Close()
	}
	waitNoTransportGoroutines(t)
}

// TestCloseWithSilentInboundConn is the regression for a real shutdown
// hang: a connection that was accepted but never sent a frame is not in any
// peer record, so before conn tracking Close never closed it and wg.Wait
// blocked on its readLoop forever.
func TestCloseWithSilentInboundConn(t *testing.T) {
	n, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", nil, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	time.Sleep(20 * time.Millisecond) // let acceptLoop hand the conn to a readLoop
	done := make(chan struct{})
	go func() {
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung on a silent inbound connection")
	}
	waitNoTransportGoroutines(t)
}

// TestDrainFlushesQueuedFrames: frames enqueued right before shutdown must
// reach the peer when the sender drains first — the graceful-shutdown path
// pigserver takes on SIGTERM.
func TestDrainFlushesQueuedFrames(t *testing.T) {
	dst := &collector{}
	rx, err := ListenTCP(ids.NewID(1, 2), "127.0.0.1:0", nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", map[ids.ID]string{rx.ID(): rx.Addr()}, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 200
	for i := 1; i <= total; i++ {
		tx.Send(rx.ID(), wire.P3{Ballot: 1, Slot: uint64(i)})
	}
	if !tx.Drain(5 * time.Second) {
		t.Fatal("Drain did not settle")
	}
	tx.Close()
	waitFor(t, func() bool { return dst.count() == total }, "drained frames lost")
}

// TestDrainTimesOutAgainstDeadPeer: with a peer that never reads, Drain
// must give up at its deadline instead of hanging shutdown.
func TestDrainTimesOutAgainstDeadPeer(t *testing.T) {
	deadAddr, stopDead := blackholeListener(t)
	defer stopDead()
	deadID := ids.NewID(7, 7)
	tx, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", map[ids.ID]string{deadID: deadAddr}, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	big := wire.P2a{Ballot: 1, Slot: 1, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: make([]byte, 1<<20)}}}
	for i := 0; i < 64; i++ { // far beyond any socket buffer
		tx.Send(deadID, big)
	}
	start := time.Now()
	drained := tx.Drain(200 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Drain took %v; must respect its deadline", elapsed)
	}
	_ = drained // either outcome is legal; the deadline is the contract
}
