package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/wire"
)

type collector struct {
	mu  sync.Mutex
	got []wire.Msg
}

func (c *collector) OnMessage(from ids.ID, m wire.Msg) {
	c.mu.Lock()
	c.got = append(c.got, m)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

func TestLocalBusDelivery(t *testing.T) {
	bus := NewLocalBus()
	defer bus.Close()
	c1 := &collector{}
	n1, err := bus.Node(ids.NewID(1, 1), c1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := &collector{}
	n2, err := bus.Node(ids.NewID(1, 2), c2)
	if err != nil {
		t.Fatal(err)
	}
	n1.Send(n2.ID(), wire.P1a{Ballot: 7})
	waitFor(t, func() bool { return c2.count() == 1 }, "message not delivered")
	c2.mu.Lock()
	if p, ok := c2.got[0].(wire.P1a); !ok || p.Ballot != 7 {
		t.Errorf("got %+v", c2.got[0])
	}
	c2.mu.Unlock()
}

func TestLocalBusDuplicateID(t *testing.T) {
	bus := NewLocalBus()
	defer bus.Close()
	if _, err := bus.Node(ids.NewID(1, 1), &collector{}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Node(ids.NewID(1, 1), &collector{}); err == nil {
		t.Error("duplicate ID must be rejected")
	}
}

func TestLocalBusUnknownDestinationDropped(t *testing.T) {
	bus := NewLocalBus()
	defer bus.Close()
	n1, _ := bus.Node(ids.NewID(1, 1), &collector{})
	n1.Send(ids.NewID(9, 9), wire.P1a{Ballot: 1}) // must not panic or block
}

func TestLocalTimerFiresAndStops(t *testing.T) {
	bus := NewLocalBus()
	defer bus.Close()
	n1, _ := bus.Node(ids.NewID(1, 1), &collector{})
	var mu sync.Mutex
	fired := 0
	n1.After(10*time.Millisecond, func() { mu.Lock(); fired++; mu.Unlock() })
	tm := n1.After(10*time.Millisecond, func() { mu.Lock(); fired += 100; mu.Unlock() })
	if !tm.Stop() {
		t.Error("Stop should succeed before firing")
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return fired > 0 }, "timer never fired")
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (stopped timer must not run)", fired)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := wire.P2a{Ballot: 9, Slot: 4, Cmds: []kvstore.Command{{Op: kvstore.Put, Key: 1, Value: []byte("xyz")}}}
	if err := WriteFrame(&buf, ids.NewID(2, 3), want); err != nil {
		t.Fatal(err)
	}
	from, m, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != ids.NewID(2, 3) {
		t.Errorf("from = %v", from)
	}
	got, ok := m.(wire.P2a)
	if !ok || got.Slot != 4 || len(got.Cmds) != 1 || string(got.Cmds[0].Value) != "xyz" {
		t.Errorf("got %+v", m)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// Oversized length prefix.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame must error")
	}
	// Truncated body.
	buf.Reset()
	buf.Write([]byte{16, 0, 0, 0, 1, 2})
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("truncated frame must error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	c1, c2 := &collector{}, &collector{}
	id1, id2 := ids.NewID(1, 1), ids.NewID(1, 2)
	n1, err := ListenTCP(id1, "127.0.0.1:0", map[ids.ID]string{}, c1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP(id2, "127.0.0.1:0", map[ids.ID]string{}, c2)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.RegisterAddr(id2, n2.Addr())
	n2.RegisterAddr(id1, n1.Addr())

	n1.Send(id2, wire.P1a{Ballot: 3})
	waitFor(t, func() bool { return c2.count() == 1 }, "n2 did not receive")
	n2.Send(id1, wire.P2b{Ballot: 3, From: id2, Slot: 1})
	waitFor(t, func() bool { return c1.count() == 1 }, "n1 did not receive")
}

func TestTCPSelfSend(t *testing.T) {
	c := &collector{}
	n, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", nil, c)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Send(n.ID(), wire.P1a{Ballot: 1})
	waitFor(t, func() bool { return c.count() == 1 }, "self-send lost")
}

func TestTCPUnknownPeerDropped(t *testing.T) {
	n, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", nil, &collector{})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Send(ids.NewID(7, 7), wire.P1a{Ballot: 1}) // no addr: drop silently
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	c1 := &collector{}
	id1, id2 := ids.NewID(1, 1), ids.NewID(1, 2)
	n1, err := ListenTCP(id1, "127.0.0.1:0", map[ids.ID]string{}, c1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()

	c2 := &collector{}
	n2, err := ListenTCP(id2, "127.0.0.1:0", map[ids.ID]string{}, c2)
	if err != nil {
		t.Fatal(err)
	}
	addr2 := n2.Addr()
	n1.RegisterAddr(id2, addr2)
	n1.Send(id2, wire.P1a{Ballot: 1})
	waitFor(t, func() bool { return c2.count() == 1 }, "first delivery")

	// Restart peer on the same port.
	n2.Close()
	c2b := &collector{}
	n2b, err := ListenTCP(id2, addr2, map[ids.ID]string{}, c2b)
	if err != nil {
		t.Fatal(err)
	}
	defer n2b.Close()
	// The first send after restart may hit the dead connection and drop;
	// subsequent sends must get through on a fresh dial.
	waitFor(t, func() bool {
		n1.Send(id2, wire.P1a{Ballot: 2})
		return c2b.count() > 0
	}, "no delivery after peer restart")
}

// End-to-end: a 3-node Paxos cluster over the local bus commits a command.
func TestPaxosOverLocalBus(t *testing.T) {
	bus := NewLocalBus()
	defer bus.Close()
	cc := config.NewLAN(3)
	replicas := make(map[ids.ID]*paxos.Replica)
	for _, id := range cc.Nodes {
		tr := &trampolineT{}
		n, err := bus.Node(id, tr)
		if err != nil {
			t.Fatal(err)
		}
		r := paxos.New(n, paxos.Config{Cluster: cc, ID: id, InitialLeader: cc.Nodes[0]}, nil)
		tr.h = r.OnMessage
		replicas[id] = r
		n2 := n
		_ = n2
	}
	cl := &collector{}
	clNode, _ := bus.Node(ids.NewID(999, 1), cl)
	for _, id := range cc.Nodes {
		id := id
		r := replicas[id]
		// Start must run on the node's own loop.
		bus.nodes[id].inbox <- envelope{fn: r.Start}
	}
	time.Sleep(50 * time.Millisecond)
	clNode.Send(cc.Nodes[0], wire.Request{Cmd: kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("live"), ClientID: 1, Seq: 1}})
	waitFor(t, func() bool { return cl.count() >= 1 }, "no reply over local bus")
	cl.mu.Lock()
	rep := cl.got[0].(wire.Reply)
	cl.mu.Unlock()
	if !rep.OK {
		t.Errorf("reply: %+v", rep)
	}
}

// End-to-end: a 3-node PigPaxos cluster over real TCP commits a command.
func TestPigPaxosOverTCP(t *testing.T) {
	cc := config.NewLAN(3)
	addrs := make(map[ids.ID]string)
	nodes := make(map[ids.ID]*TCPNode)
	replicas := make(map[ids.ID]*pigpaxos.Replica)
	for _, id := range cc.Nodes {
		tr := &trampolineT{}
		n, err := ListenTCP(id, "127.0.0.1:0", addrs, tr)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[id] = n
		addrs[id] = n.Addr()
		r := pigpaxos.New(n, pigpaxos.Config{
			Paxos:        paxos.Config{Cluster: cc, ID: id, InitialLeader: cc.Nodes[0]},
			NumGroups:    2,
			RelayTimeout: 50 * time.Millisecond,
		})
		tr.h = r.OnMessage
		replicas[id] = r
	}
	// Share the full address book (all maps alias `addrs`).
	for _, n := range nodes {
		for id, a := range addrs {
			n.RegisterAddr(id, a)
		}
	}
	cl := &collector{}
	clID := ids.NewID(999, 1)
	clNode, err := ListenTCP(clID, "127.0.0.1:0", addrs, cl)
	if err != nil {
		t.Fatal(err)
	}
	defer clNode.Close()
	for _, id := range cc.Nodes {
		nodes[id].RegisterAddr(clID, clNode.Addr())
	}
	for _, id := range cc.Nodes {
		r := replicas[id]
		nodes[id].inbox <- envelope{fn: r.Start}
	}
	time.Sleep(100 * time.Millisecond)
	clNode.Send(cc.Nodes[0], wire.Request{Cmd: kvstore.Command{Op: kvstore.Put, Key: 9, Value: []byte("tcp"), ClientID: 1, Seq: 1}})
	waitFor(t, func() bool { return cl.count() >= 1 }, "no reply over TCP")
	cl.mu.Lock()
	rep := cl.got[0].(wire.Reply)
	cl.mu.Unlock()
	if !rep.OK {
		t.Errorf("reply: %+v", rep)
	}
}

type trampolineT struct {
	mu sync.Mutex
	h  func(from ids.ID, m wire.Msg)
}

func (t *trampolineT) OnMessage(from ids.ID, m wire.Msg) {
	t.mu.Lock()
	h := t.h
	t.mu.Unlock()
	if h != nil {
		h(from, m)
	}
}

func TestTCPReverseRouteForUndialableClient(t *testing.T) {
	// A client with no listener of its own: the server must answer over
	// the client's inbound connection.
	srvC := &collector{}
	srv, err := ListenTCP(ids.NewID(1, 1), "127.0.0.1:0", nil, srvC)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Echo server: reply to every P1a with a P1b over the reverse route.
	tr := &trampolineT{}
	srv2, err := ListenTCP(ids.NewID(1, 2), "127.0.0.1:0", nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	tr.h = func(from ids.ID, m wire.Msg) {
		if _, ok := m.(wire.P1a); ok {
			srv2.Send(from, wire.P1b{Ballot: 1, From: srv2.ID()})
		}
	}
	clC := &collector{}
	client, err := ListenTCP(ids.NewID(999, 1), "127.0.0.1:0", map[ids.ID]string{ids.NewID(1, 2): srv2.Addr()}, clC)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.Send(ids.NewID(1, 2), wire.P1a{Ballot: 1})
	waitFor(t, func() bool { return clC.count() == 1 }, "no reply over reverse route")
}
