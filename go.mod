module pigpaxos

go 1.24
