package pigpaxos

import (
	"time"

	"pigpaxos/internal/harness"
	"pigpaxos/internal/workload"
)

// BenchOptions configures one deterministic simulated benchmark run. The
// simulation models per-node CPU costs and link latencies (LAN or 3-region
// WAN), reproducing the paper's AWS testbed behaviour on a laptop.
type BenchOptions struct {
	// Protocol selects the system under test.
	Protocol Protocol
	// N is the cluster size (default 5).
	N int
	// WAN spreads nodes over three regions with one relay group each.
	WAN bool
	// Clients is the number of closed-loop clients (default 50).
	Clients int
	// RelayGroups is PigPaxos' r (default 3).
	RelayGroups int
	// Keys, ReadRatio and PayloadSize shape the workload (defaults:
	// 1000 keys, 50% reads, 8-byte values — the paper's §5.2 settings).
	Keys        int
	ReadRatio   float64
	WriteOnly   bool
	PayloadSize int
	// Warmup and Measure bound the measurement window (defaults 500ms/2s
	// of virtual time).
	Warmup, Measure time.Duration
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// BatchSize caps commands per log slot at the leader (≤1 = unbatched).
	// Batching amortizes the per-slot fan-out round over the whole batch
	// and multiplies saturation throughput for Paxos and PigPaxos alike.
	BatchSize int
	// BatchDelay holds under-full batches open at the leader (0 = group
	// commit: batches form only while the pipeline window is full).
	BatchDelay time.Duration
	// MaxInFlight bounds uncommitted slots in flight at the leader
	// (pipelining window; defaults to 4 when BatchSize > 1).
	MaxInFlight int
}

// BenchResult is a simulated benchmark measurement.
type BenchResult struct {
	// Throughput is completed requests per second of virtual time.
	Throughput float64
	// MeanLatency and P99Latency summarize request latencies.
	MeanLatency, P99Latency time.Duration
	// Messages is the total network messages sent during the run.
	Messages uint64
	// MeanBatchSize is commands per proposed slot at the leader (1 when
	// batching is off; 0 for EPaxos).
	MeanBatchSize float64
	// MsgsPerCmd is cluster-wide network messages per command executed at
	// the leader — the amortization batching buys.
	MsgsPerCmd float64
}

// Bench runs one simulated benchmark and returns its measurements.
func Bench(opts BenchOptions) BenchResult {
	o := harness.Options{
		N:           opts.N,
		WAN:         opts.WAN,
		ZoneGroups:  opts.WAN,
		Clients:     opts.Clients,
		NumGroups:   opts.RelayGroups,
		Warmup:      opts.Warmup,
		Measure:     opts.Measure,
		Seed:        opts.Seed,
		BatchSize:   opts.BatchSize,
		BatchDelay:  opts.BatchDelay,
		MaxInFlight: opts.MaxInFlight,
	}
	switch opts.Protocol {
	case ProtocolPaxos:
		o.Protocol = harness.Paxos
	case ProtocolEPaxos:
		o.Protocol = harness.EPaxos
	default:
		o.Protocol = harness.PigPaxos
	}
	o.Workload = workload.Config{
		Keys:        opts.Keys,
		ReadRatio:   opts.ReadRatio,
		PayloadSize: opts.PayloadSize,
	}
	if opts.WriteOnly {
		o.Workload = o.Workload.WriteOnly()
	}
	r := harness.Run(o)
	return BenchResult{
		Throughput:    r.Throughput,
		MeanLatency:   r.Latency.Mean,
		P99Latency:    r.Latency.P99,
		Messages:      r.Messages,
		MeanBatchSize: r.MeanBatchSize,
		MsgsPerCmd:    r.MsgsPerCmd,
	}
}
