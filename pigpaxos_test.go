package pigpaxos

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClusterPutGetDelete(t *testing.T) {
	for _, p := range []Protocol{ProtocolPigPaxos, ProtocolPaxos, ProtocolEPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			c, err := NewCluster(Options{N: 5, Protocol: p, RelayGroups: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cl, err := c.Client()
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Put(1, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := cl.Get(1)
			if err != nil || !ok || string(v) != "hello" {
				t.Fatalf("get: %q %v %v", v, ok, err)
			}
			found, err := cl.Delete(1)
			if err != nil || !found {
				t.Fatalf("delete: %v %v", found, err)
			}
			_, ok, err = cl.Get(1)
			if err != nil || ok {
				t.Fatalf("get after delete: %v %v", ok, err)
			}
		})
	}
}

func TestClusterGetMissing(t *testing.T) {
	c, err := NewCluster(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	_, ok, err := cl.Get(424242)
	if err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, cl *Client) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := uint64(g*1000 + i)
				if err := cl.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					errs <- err
					return
				}
				if _, ok, err := cl.Get(key); err != nil || !ok {
					errs <- fmt.Errorf("get %d: ok=%v err=%v", key, ok, err)
					return
				}
			}
		}(g, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClusterReplicasConverge(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	for i := 0; i < 30; i++ {
		if err := cl.Put(uint64(i%5), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Commit watermarks ride on heartbeats; allow them to flush.
	deadline := time.Now().Add(3 * time.Second)
	for {
		applied := c.StoreApplied()
		all := true
		for _, a := range applied {
			if a != applied[0] {
				all = false
			}
		}
		if all && applied[0] >= 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: %v", applied)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sums := c.StoreChecksums()
	for _, s := range sums[1:] {
		if s != sums[0] {
			t.Fatalf("replica state diverged: %v", sums)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{N: 3, RelayGroups: 3}); err == nil {
		t.Error("relay groups ≥ N must be rejected")
	}
}

func TestParseProtocol(t *testing.T) {
	for s, want := range map[string]Protocol{
		"pigpaxos": ProtocolPigPaxos, "pig": ProtocolPigPaxos,
		"paxos": ProtocolPaxos, "multipaxos": ProtocolPaxos,
		"epaxos": ProtocolEPaxos,
	} {
		got, err := ParseProtocol(s)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseProtocol("raft"); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolPigPaxos.String() != "pigpaxos" || ProtocolPaxos.String() != "paxos" || ProtocolEPaxos.String() != "epaxos" {
		t.Error("protocol names wrong")
	}
}

func TestBenchFacade(t *testing.T) {
	r := Bench(BenchOptions{
		Protocol: ProtocolPigPaxos,
		N:        9, RelayGroups: 3, Clients: 20,
		Warmup: 100 * time.Millisecond, Measure: 500 * time.Millisecond,
	})
	if r.Throughput < 100 || r.MeanLatency <= 0 {
		t.Fatalf("bench: %+v", r)
	}
	// Determinism through the facade.
	r2 := Bench(BenchOptions{
		Protocol: ProtocolPigPaxos,
		N:        9, RelayGroups: 3, Clients: 20,
		Warmup: 100 * time.Millisecond, Measure: 500 * time.Millisecond,
	})
	if r.Throughput != r2.Throughput {
		t.Error("facade bench must be deterministic")
	}
}

func TestClusterLeaderFailover(t *testing.T) {
	c, err := NewCluster(Options{
		N: 5, RelayGroups: 2,
		ElectionTimeout: 150 * time.Millisecond,
		RelayTimeout:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	cl.SetTimeout(10 * time.Second)
	if err := cl.Put(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := c.StopNode(c.Leader()); err != nil {
		t.Fatal(err)
	}
	// The next operation must succeed via the newly elected leader.
	if err := cl.Put(2, []byte("after")); err != nil {
		t.Fatalf("put after leader crash: %v", err)
	}
	v, ok, err := cl.Get(2)
	if err != nil || !ok || string(v) != "after" {
		t.Fatalf("get after failover: %q %v %v", v, ok, err)
	}
}

func TestClusterQuorumRead(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	if err := cl.Put(7, []byte("pqr-value")); err != nil {
		t.Fatal(err)
	}
	// Commit watermarks need a heartbeat to reach a majority of stores.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok, err := cl.QuorumRead(7)
		if err == nil && ok && string(v) == "pqr-value" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quorum read: %q %v %v", v, ok, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Missing keys read cleanly too.
	_, ok, err := cl.QuorumRead(424242)
	if err != nil || ok {
		t.Fatalf("missing quorum read: ok=%v err=%v", ok, err)
	}
}

func TestClusterLeaseReads(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2, ReadMode: ReadLease})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	if err := cl.Put(3, []byte("leased")); err != nil {
		t.Fatal(err)
	}
	// Heartbeat acks establish the lease within ~2 intervals.
	time.Sleep(100 * time.Millisecond)
	v, ok, err := cl.Get(3)
	if err != nil || !ok || string(v) != "leased" {
		t.Fatalf("lease read: %q %v %v", v, ok, err)
	}
}

// Leader must report the actual current leader, not a hardcoded node: after
// crashing it, polling must converge on a different live node (the
// regression test for the old `return 1` stub).
func TestClusterLeaderTracksFailover(t *testing.T) {
	c, err := NewCluster(Options{
		N: 5, RelayGroups: 2,
		ElectionTimeout: 150 * time.Millisecond,
		RelayTimeout:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	old := c.Leader()
	if old == 0 {
		t.Fatal("no leader reported on a healthy cluster")
	}
	if err := c.StopNode(old); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l := c.Leader(); l != 0 && l != old {
			return // a different live node took over
		}
		if time.Now().After(deadline) {
			t.Fatalf("Leader() still reports %d after crashing it", c.Leader())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// A sharded cluster must serve the full KV surface, routing by key across
// independent groups, each with its own leader.
func TestShardedClusterPutGetDelete(t *testing.T) {
	for _, p := range []Protocol{ProtocolPigPaxos, ProtocolPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			c, err := NewCluster(Options{N: 12, Protocol: p, Shards: 4, RelayGroups: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Shards() != 4 {
				t.Fatalf("Shards() = %d, want 4", c.Shards())
			}
			cl, err := c.Client()
			if err != nil {
				t.Fatal(err)
			}
			// Enough keys to hit every shard with overwhelming probability.
			for k := uint64(0); k < 32; k++ {
				if err := cl.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
					t.Fatalf("put %d: %v", k, err)
				}
			}
			for k := uint64(0); k < 32; k++ {
				v, ok, err := cl.Get(k)
				if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
					t.Fatalf("get %d: %q %v %v", k, v, ok, err)
				}
			}
			found, err := cl.Delete(5)
			if err != nil || !found {
				t.Fatalf("delete: %v %v", found, err)
			}
			if _, ok, _ := cl.Get(5); ok {
				t.Fatal("key survived delete")
			}
			// Every shard must report a leader; leaders must cover more
			// than one distinct node.
			distinct := map[int]bool{}
			for k := 0; k < c.Shards(); k++ {
				l := c.ShardLeader(k)
				if l == 0 {
					t.Fatalf("shard %d has no leader", k)
				}
				distinct[l] = true
			}
			if len(distinct) < 2 {
				t.Fatalf("all shards led by one node: %v", distinct)
			}
		})
	}
}

// Crashing one shard's leader must not disturb the other shards, and the
// touched shard must fail over.
func TestShardedClusterLeaderFailover(t *testing.T) {
	c, err := NewCluster(Options{
		N: 12, Shards: 4, RelayGroups: 2,
		ElectionTimeout: 150 * time.Millisecond,
		RelayTimeout:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	cl.SetTimeout(10 * time.Second)
	for k := uint64(0); k < 16; k++ {
		if err := cl.Put(k, []byte("before")); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.ShardLeader(2)
	if victim == 0 {
		t.Fatal("shard 2 has no leader")
	}
	others := map[int]int{}
	for k := 0; k < 4; k++ {
		if k != 2 {
			others[k] = c.ShardLeader(k)
		}
	}
	if err := c.StopNode(victim); err != nil {
		t.Fatal(err)
	}
	// All keys must still be writable — shard 2 via its new leader.
	for k := uint64(0); k < 16; k++ {
		if err := cl.Put(k, []byte("after")); err != nil {
			t.Fatalf("put %d after shard-leader crash: %v", k, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l := c.ShardLeader(2); l != 0 && l != victim {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 2 still led by crashed node %d", victim)
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Untouched shards keep their leaders.
	for k, want := range others {
		if got := c.ShardLeader(k); got != want {
			t.Errorf("shard %d leader moved %d -> %d though its leader never crashed", k, want, got)
		}
	}
}

// Quorum reads route to the owning shard's members.
func TestShardedClusterQuorumRead(t *testing.T) {
	c, err := NewCluster(Options{N: 12, Shards: 4, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	for k := uint64(0); k < 8; k++ {
		if err := cl.Put(k, []byte(fmt.Sprintf("q%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 8; k++ {
		deadline := time.Now().Add(3 * time.Second)
		for {
			v, ok, err := cl.QuorumRead(k)
			if err == nil && ok && string(v) == fmt.Sprintf("q%d", k) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("quorum read %d: %q %v %v", k, v, ok, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// Per-shard convergence: each shard's members agree on their store.
func TestShardedClusterConverges(t *testing.T) {
	c, err := NewCluster(Options{N: 12, Shards: 4, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	for i := 0; i < 40; i++ {
		if err := cl.Put(uint64(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for k := 0; k < c.Shards(); k++ {
		for {
			sums := c.ShardStoreChecksums(k)
			same := true
			for _, s := range sums[1:] {
				if s != sums[0] {
					same = false
				}
			}
			if same {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard %d replicas diverged: %v", k, sums)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// Sharding requires a leader; EPaxos must be rejected.
func TestShardedClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{N: 12, Shards: 4, Protocol: ProtocolEPaxos}); err == nil {
		t.Error("sharded EPaxos must be rejected")
	}
	// RelayGroups larger than a shard's group is clamped, not an error.
	c, err := NewCluster(Options{N: 12, Shards: 4, RelayGroups: 5})
	if err != nil {
		t.Fatalf("clampable relay groups rejected: %v", err)
	}
	c.Close()
}
