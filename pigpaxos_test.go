package pigpaxos

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClusterPutGetDelete(t *testing.T) {
	for _, p := range []Protocol{ProtocolPigPaxos, ProtocolPaxos, ProtocolEPaxos} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			c, err := NewCluster(Options{N: 5, Protocol: p, RelayGroups: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			cl, err := c.Client()
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Put(1, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := cl.Get(1)
			if err != nil || !ok || string(v) != "hello" {
				t.Fatalf("get: %q %v %v", v, ok, err)
			}
			found, err := cl.Delete(1)
			if err != nil || !found {
				t.Fatalf("delete: %v %v", found, err)
			}
			_, ok, err = cl.Get(1)
			if err != nil || ok {
				t.Fatalf("get after delete: %v %v", ok, err)
			}
		})
	}
}

func TestClusterGetMissing(t *testing.T) {
	c, err := NewCluster(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	_, ok, err := cl.Get(424242)
	if err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		cl, err := c.Client()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, cl *Client) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := uint64(g*1000 + i)
				if err := cl.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					errs <- err
					return
				}
				if _, ok, err := cl.Get(key); err != nil || !ok {
					errs <- fmt.Errorf("get %d: ok=%v err=%v", key, ok, err)
					return
				}
			}
		}(g, cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClusterReplicasConverge(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	for i := 0; i < 30; i++ {
		if err := cl.Put(uint64(i%5), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Commit watermarks ride on heartbeats; allow them to flush.
	deadline := time.Now().Add(3 * time.Second)
	for {
		applied := c.StoreApplied()
		all := true
		for _, a := range applied {
			if a != applied[0] {
				all = false
			}
		}
		if all && applied[0] >= 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: %v", applied)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sums := c.StoreChecksums()
	for _, s := range sums[1:] {
		if s != sums[0] {
			t.Fatalf("replica state diverged: %v", sums)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Options{N: 3, RelayGroups: 3}); err == nil {
		t.Error("relay groups ≥ N must be rejected")
	}
}

func TestParseProtocol(t *testing.T) {
	for s, want := range map[string]Protocol{
		"pigpaxos": ProtocolPigPaxos, "pig": ProtocolPigPaxos,
		"paxos": ProtocolPaxos, "multipaxos": ProtocolPaxos,
		"epaxos": ProtocolEPaxos,
	} {
		got, err := ParseProtocol(s)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseProtocol("raft"); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtocolPigPaxos.String() != "pigpaxos" || ProtocolPaxos.String() != "paxos" || ProtocolEPaxos.String() != "epaxos" {
		t.Error("protocol names wrong")
	}
}

func TestBenchFacade(t *testing.T) {
	r := Bench(BenchOptions{
		Protocol: ProtocolPigPaxos,
		N:        9, RelayGroups: 3, Clients: 20,
		Warmup: 100 * time.Millisecond, Measure: 500 * time.Millisecond,
	})
	if r.Throughput < 100 || r.MeanLatency <= 0 {
		t.Fatalf("bench: %+v", r)
	}
	// Determinism through the facade.
	r2 := Bench(BenchOptions{
		Protocol: ProtocolPigPaxos,
		N:        9, RelayGroups: 3, Clients: 20,
		Warmup: 100 * time.Millisecond, Measure: 500 * time.Millisecond,
	})
	if r.Throughput != r2.Throughput {
		t.Error("facade bench must be deterministic")
	}
}

func TestClusterLeaderFailover(t *testing.T) {
	c, err := NewCluster(Options{
		N: 5, RelayGroups: 2,
		ElectionTimeout: 150 * time.Millisecond,
		RelayTimeout:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	cl.SetTimeout(10 * time.Second)
	if err := cl.Put(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := c.StopNode(c.Leader()); err != nil {
		t.Fatal(err)
	}
	// The next operation must succeed via the newly elected leader.
	if err := cl.Put(2, []byte("after")); err != nil {
		t.Fatalf("put after leader crash: %v", err)
	}
	v, ok, err := cl.Get(2)
	if err != nil || !ok || string(v) != "after" {
		t.Fatalf("get after failover: %q %v %v", v, ok, err)
	}
}

func TestClusterQuorumRead(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	if err := cl.Put(7, []byte("pqr-value")); err != nil {
		t.Fatal(err)
	}
	// Commit watermarks need a heartbeat to reach a majority of stores.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok, err := cl.QuorumRead(7)
		if err == nil && ok && string(v) == "pqr-value" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quorum read: %q %v %v", v, ok, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Missing keys read cleanly too.
	_, ok, err := cl.QuorumRead(424242)
	if err != nil || ok {
		t.Fatalf("missing quorum read: ok=%v err=%v", ok, err)
	}
}

func TestClusterLeaseReads(t *testing.T) {
	c, err := NewCluster(Options{N: 5, RelayGroups: 2, ReadMode: ReadLease})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, _ := c.Client()
	if err := cl.Put(3, []byte("leased")); err != nil {
		t.Fatal(err)
	}
	// Heartbeat acks establish the lease within ~2 intervals.
	time.Sleep(100 * time.Millisecond)
	v, ok, err := cl.Get(3)
	if err != nil || !ok || string(v) != "leased" {
		t.Fatalf("lease read: %q %v %v", v, ok, err)
	}
}
