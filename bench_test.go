package pigpaxos

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations of the design choices DESIGN.md calls
// out. Each benchmark runs the corresponding experiment on the
// deterministic simulator and reports the headline quantity through
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. EXPERIMENTS.md records the resulting
// numbers next to the paper's. Full-resolution sweeps are available via
// cmd/pigbench.

import (
	"testing"
	"time"

	"pigpaxos/internal/harness"
	"pigpaxos/internal/model"
	ipaxos "pigpaxos/internal/paxos"
	ipig "pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/workload"
)

// benchSuite trims sweeps so the whole -bench=. run stays in minutes while
// preserving every experiment's shape.
func benchSuite() harness.Suite {
	s := harness.QuickSuite()
	s.Warmup = 300 * time.Millisecond
	s.Measure = time.Second
	return s
}

// BenchmarkTable1MessageLoad regenerates Table 1: analytical message loads
// at leader and followers for a 25-node cluster, r = 2..6 and Paxos.
func BenchmarkTable1MessageLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Table1MessageLoad()
		b.ReportMetric(rep.Raw["Ml_r2"], "Ml(r=2)")
		b.ReportMetric(rep.Raw["Ml_r24"], "Ml(paxos)")
	}
}

// BenchmarkTable2MessageLoad regenerates Table 2 for the 9-node cluster.
func BenchmarkTable2MessageLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Table2MessageLoad()
		b.ReportMetric(rep.Raw["Ml_r2"], "Ml(r=2)")
		b.ReportMetric(rep.Raw["Ml_r8"], "Ml(paxos)")
	}
}

// BenchmarkFig7RelayGroups regenerates Figure 7: max throughput of 25-node
// PigPaxos across relay-group counts. The paper's finding: fewest groups
// (r=2) wins; throughput declines as r grows.
func BenchmarkFig7RelayGroups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Fig7RelayGroups()
		b.ReportMetric(rep.Raw["r2"], "req/s(r=2)")
		b.ReportMetric(rep.Raw["r3"], "req/s(r=3)")
		b.ReportMetric(rep.Raw["r6"], "req/s(r=6)")
	}
}

// BenchmarkFig8Scalability25 regenerates Figure 8: 25-node latency vs
// throughput for the three protocols. Paper: Paxos ≈ 2k, EPaxos ≈ 1k,
// PigPaxos ≈ 7k req/s.
func BenchmarkFig8Scalability25(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Fig8Scalability25()
		b.ReportMetric(rep.Raw["Paxos"], "req/s(paxos)")
		b.ReportMetric(rep.Raw["EPaxos"], "req/s(epaxos)")
		b.ReportMetric(rep.Raw["PigPaxos"], "req/s(pig)")
	}
}

// BenchmarkFig9WAN regenerates Figure 9: 15-node, 3-region WAN cluster.
func BenchmarkFig9WAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Fig9WAN()
		b.ReportMetric(rep.Raw["Paxos"], "req/s(paxos)")
		b.ReportMetric(rep.Raw["PigPaxos"], "req/s(pig)")
	}
}

// BenchmarkFig10Small5 regenerates Figure 10: the 5-node cluster.
func BenchmarkFig10Small5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Fig10Small5()
		b.ReportMetric(rep.Raw["Paxos"], "req/s(paxos)")
		b.ReportMetric(rep.Raw["EPaxos"], "req/s(epaxos)")
		b.ReportMetric(rep.Raw["PigPaxos"], "req/s(pig)")
	}
}

// BenchmarkFig11Small9 regenerates Figure 11: the 9-node cluster with 2 and
// 3 relay groups.
func BenchmarkFig11Small9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Fig11Small9()
		b.ReportMetric(rep.Raw["Paxos"], "req/s(paxos)")
		b.ReportMetric(rep.Raw["PigPaxos-r2"], "req/s(pig-r2)")
		b.ReportMetric(rep.Raw["PigPaxos-r3"], "req/s(pig-r3)")
	}
}

// BenchmarkFig12PayloadSize regenerates Figure 12: payload sweep 8..1280B.
func BenchmarkFig12PayloadSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Fig12PayloadSize()
		b.ReportMetric(rep.Raw["paxos8"], "req/s(paxos,8B)")
		b.ReportMetric(rep.Raw["paxos1280"], "req/s(paxos,1280B)")
		b.ReportMetric(rep.Raw["pig8"], "req/s(pig,8B)")
		b.ReportMetric(rep.Raw["pig1280"], "req/s(pig,1280B)")
		b.ReportMetric(rep.Raw["pigNormMin"], "pig-norm-min")
	}
}

// BenchmarkFig13FaultTolerance regenerates Figure 13: throughput over time
// while one of 25 nodes is down, 3 relay groups, 50ms relay timeout.
// Paper: ≈3% decline during the fault window.
func BenchmarkFig13FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := benchSuite().Fig13FaultTolerance()
		b.ReportMetric(rep.Raw["healthy"], "req/s(healthy)")
		b.ReportMetric(rep.Raw["faulted"], "req/s(faulted)")
		b.ReportMetric(rep.Raw["declinePct"], "decline%")
	}
}

// --------------------------------------------------------------- ablations --

func ablationRun(b *testing.B, mut func(*harness.Options)) float64 {
	b.Helper()
	o := harness.Options{
		Protocol:  harness.PigPaxos,
		N:         25,
		NumGroups: 3,
		Clients:   200,
		Warmup:    300 * time.Millisecond,
		Measure:   time.Second,
	}
	if mut != nil {
		mut(&o)
	}
	return harness.Run(o).Throughput
}

// BenchmarkAblationRelayRotation compares random relay rotation (§3.2)
// against pinned relays: pinned relays become hotspots and should lose.
func BenchmarkAblationRelayRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rotating := ablationRun(b, nil)
		fixed := ablationRun(b, func(o *harness.Options) {
			o.MutPig = func(c *ipig.Config) { c.FixedRelays = true }
		})
		b.ReportMetric(rotating, "req/s(rotating)")
		b.ReportMetric(fixed, "req/s(fixed)")
	}
}

// BenchmarkAblationThresholds compares wait-for-all aggregation against
// §4.2 partial response collection.
func BenchmarkAblationThresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		waitAll := ablationRun(b, nil)
		threshold := ablationRun(b, func(o *harness.Options) {
			o.MutPig = func(c *ipig.Config) { c.UseThresholds = true }
		})
		b.ReportMetric(waitAll, "req/s(wait-all)")
		b.ReportMetric(threshold, "req/s(threshold)")
	}
}

// BenchmarkAblationMultiLayer compares single-layer relay trees against the
// §6.3 multi-layer extension: the paper argues the extra layer cannot help
// because the leader remains the bottleneck.
func BenchmarkAblationMultiLayer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		single := ablationRun(b, func(o *harness.Options) { o.NumGroups = 2 })
		multi := ablationRun(b, func(o *harness.Options) {
			o.NumGroups = 2
			o.MutPig = func(c *ipig.Config) {
				c.MultiLayer = true
				c.SubGroupSize = 4
			}
		})
		b.ReportMetric(single, "req/s(1-layer)")
		b.ReportMetric(multi, "req/s(2-layer)")
	}
}

// BenchmarkAblationThriftyPaxos compares full-broadcast Paxos against the
// thrifty optimization (§2.2). On a clean cluster thrifty wins — the leader
// sends and receives only a quorum's worth of messages — but a single
// sluggish node inside the contacted set stalls every round (the §2.2
// criticism), while full-broadcast Paxos just takes the next-fastest votes.
func BenchmarkAblationThriftyPaxos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationRun(b, func(o *harness.Options) { o.Protocol = harness.Paxos })
		thrifty := ablationRun(b, func(o *harness.Options) {
			o.Protocol = harness.Paxos
			o.MutPaxos = func(c *ipaxos.Config) { c.Thrifty = true }
		})
		// Same comparison with node 2 (always inside the thrifty set)
		// running 20x slower.
		slow := func(o *harness.Options) {
			o.Protocol = harness.Paxos
			o.SluggishNode = 2
			o.SluggishFactor = 20
		}
		fullSlow := ablationRun(b, slow)
		thriftySlow := ablationRun(b, func(o *harness.Options) {
			slow(o)
			o.MutPaxos = func(c *ipaxos.Config) { c.Thrifty = true }
		})
		b.ReportMetric(full, "req/s(full)")
		b.ReportMetric(thrifty, "req/s(thrifty)")
		b.ReportMetric(fullSlow, "req/s(full+slow)")
		b.ReportMetric(thriftySlow, "req/s(thrifty+slow)")
	}
}

// BenchmarkAblationZipfianWorkload measures PigPaxos under a skewed key
// distribution (not in the paper; sanity ablation: a leader-ordered log is
// insensitive to key skew, unlike EPaxos).
func BenchmarkAblationZipfianWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		uniform := ablationRun(b, nil)
		zipf := ablationRun(b, func(o *harness.Options) {
			o.Workload = workload.Config{Dist: workload.Zipfian}
		})
		epaxosZipf := ablationRun(b, func(o *harness.Options) {
			o.Protocol = harness.EPaxos
			o.Clients = 50 // EPaxos under skew degrades fast; keep the run short
			o.Workload = workload.Config{Dist: workload.Zipfian}
		})
		b.ReportMetric(uniform, "req/s(pig-uniform)")
		b.ReportMetric(zipf, "req/s(pig-zipf)")
		b.ReportMetric(epaxosZipf, "req/s(epaxos-zipf)")
	}
}

// BenchmarkBatchingSweep measures leader-side command batching: saturation
// throughput at batch caps 1 and 16 for both leader-based protocols on the
// 25-node cluster. Batching multiplies throughput for both (≥3×) because it
// amortizes the per-slot fan-out round — the per-message leader tax the
// paper identifies — over the whole batch.
func BenchmarkBatchingSweep(b *testing.B) {
	run := func(p Protocol, batch int) BenchResult {
		return Bench(BenchOptions{
			Protocol:  p,
			N:         25,
			Clients:   200,
			BatchSize: batch,
			Warmup:    300 * time.Millisecond,
			Measure:   time.Second,
		})
	}
	for i := 0; i < b.N; i++ {
		pax1 := run(ProtocolPaxos, 1)
		pax16 := run(ProtocolPaxos, 16)
		pig1 := run(ProtocolPigPaxos, 1)
		pig16 := run(ProtocolPigPaxos, 16)
		b.ReportMetric(pax1.Throughput, "req/s(paxos,b1)")
		b.ReportMetric(pax16.Throughput, "req/s(paxos,b16)")
		b.ReportMetric(pig1.Throughput, "req/s(pig,b1)")
		b.ReportMetric(pig16.Throughput, "req/s(pig,b16)")
		b.ReportMetric(pig16.MeanBatchSize, "meanbatch(pig,b16)")
		b.ReportMetric(pig16.MsgsPerCmd, "msgs/cmd(pig,b16)")
	}
}

// BenchmarkModelTable1 measures the pure analytical model (no simulation).
func BenchmarkModelTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		model.Table(25, []int{2, 3, 4, 5, 6})
	}
}
