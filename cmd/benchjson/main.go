// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array on stdout, one object per benchmark result:
//
//	go test -run xxx -bench . -benchmem ./internal/... | benchjson > BENCH_hotpath.json
//
// CI runs it after every push so the perf trajectory of the hot-path
// benchmarks (allocs/op and ns/op for wire, des, netsim, transport) is
// tracked as a build artifact from PR 2 on.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Package is the Go package the benchmark ran in (from the preceding
	// "pkg:" or trailing "ok" lines; empty if not seen).
	Package string `json:"package,omitempty"`
	// Name is the benchmark name without the -N GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any extra b.ReportMetric columns (unit → value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results := []Result{} // non-nil: empty input must encode as [], not null
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Package: pkg, Name: name, Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				n := int64(v)
				r.BytesPerOp = &n
			case "allocs/op":
				n := int64(v)
				r.AllocsPerOp = &n
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
