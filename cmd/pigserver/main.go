// Command pigserver runs one replica of a PigPaxos (or Paxos/EPaxos)
// cluster over TCP.
//
// Usage (3-node cluster on one machine):
//
//	pigserver -id 1.1 -cluster 1.1=:7001,1.2=:7002,1.3=:7003 &
//	pigserver -id 1.2 -cluster 1.1=:7001,1.2=:7002,1.3=:7003 &
//	pigserver -id 1.3 -cluster 1.1=:7001,1.2=:7002,1.3=:7003 &
//
// The node whose ID sorts first is the initial leader. Use -protocol to
// select paxos/epaxos, -groups for PigPaxos relay groups.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"pigpaxos/internal/config"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
)

func parseID(s string) (ids.ID, error) {
	var zone, n int
	if _, err := fmt.Sscanf(s, "%d.%d", &zone, &n); err != nil {
		return 0, fmt.Errorf("bad node ID %q (want zone.node, e.g. 1.2)", s)
	}
	return ids.NewID(zone, n), nil
}

func parseCluster(s string) (map[ids.ID]string, []ids.ID, error) {
	addrs := make(map[ids.ID]string)
	var members []ids.ID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad cluster entry %q (want id=host:port)", part)
		}
		id, err := parseID(kv[0])
		if err != nil {
			return nil, nil, err
		}
		addrs[id] = kv[1]
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return addrs, members, nil
}

type handlerProxy struct{ h node.Handler }

func (p *handlerProxy) OnMessage(from ids.ID, m wire.Msg) {
	if p.h != nil {
		p.h.OnMessage(from, m)
	}
}

func main() {
	var (
		idStr      = flag.String("id", "", "this node's ID (zone.node)")
		clusterStr = flag.String("cluster", "", "comma-separated id=host:port list for every member")
		protocol   = flag.String("protocol", "pigpaxos", "pigpaxos | paxos | epaxos")
		groups     = flag.Int("groups", 2, "PigPaxos relay groups")
		relayTO    = flag.Duration("relay-timeout", 50*time.Millisecond, "relay aggregation timeout")
		electTO    = flag.Duration("election-timeout", 2*time.Second, "leader failover timeout (0 disables)")
		readMode   = flag.String("reads", "log", "read path: log | lease | any (paxos/pigpaxos)")
		retryTO    = flag.Duration("retry-timeout", 250*time.Millisecond, "leader P2a retransmit timeout for lossy links (0 disables)")
	)
	flag.Parse()
	if *idStr == "" || *clusterStr == "" {
		fmt.Fprintln(os.Stderr, "usage: pigserver -id 1.1 -cluster 1.1=:7001,1.2=:7002,...")
		os.Exit(2)
	}
	self, err := parseID(*idStr)
	if err != nil {
		log.Fatal(err)
	}
	addrs, members, err := parseCluster(*clusterStr)
	if err != nil {
		log.Fatal(err)
	}
	selfAddr, ok := addrs[self]
	if !ok {
		log.Fatalf("node %v is not in the cluster list", self)
	}
	cc := config.Cluster{Nodes: members, Addrs: addrs}
	if err := cc.Validate(); err != nil {
		log.Fatal(err)
	}
	var rm paxos.ReadMode
	switch *readMode {
	case "log":
		rm = paxos.ReadLog
	case "lease":
		rm = paxos.ReadLease
	case "any":
		rm = paxos.ReadAny
	default:
		log.Fatalf("unknown read mode %q (log|lease|any)", *readMode)
	}
	base := paxos.Config{
		Cluster: cc, ID: self, InitialLeader: members[0],
		ElectionTimeout: *electTO,
		ReadMode:        rm,
		RetryTimeout:    *retryTO,
		CompactEvery:    4096, // bound memory on long-running servers
	}

	proxy := &handlerProxy{}
	tn, err := transport.ListenTCP(self, selfAddr, addrs, proxy)
	if err != nil {
		log.Fatal(err)
	}
	defer tn.Close()

	leader := members[0]
	var start func()
	switch *protocol {
	case "paxos":
		r := paxos.New(tn, base, nil)
		proxy.h = r
		start = r.Start
	case "epaxos":
		r := epaxos.New(tn, epaxos.Config{Cluster: cc, ID: self})
		proxy.h = r
		start = r.Start
	case "pigpaxos":
		r := pigpaxos.New(tn, pigpaxos.Config{
			Paxos:        base,
			NumGroups:    *groups,
			RelayTimeout: *relayTO,
		})
		proxy.h = r
		start = r.Start
	default:
		log.Fatalf("unknown protocol %q", *protocol)
	}

	// Run Start on the node's event loop to respect single-threading.
	tn.After(0, start)
	log.Printf("%s node %v serving on %s (leader: %v, %d members)",
		*protocol, self, tn.Addr(), leader, len(members))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
}
