// Command pigserver runs one replica of a PigPaxos (or Paxos/EPaxos)
// cluster over TCP.
//
// Usage (3-node cluster on one machine):
//
//	pigserver -id 1.1 -cluster 1.1=:7001,1.2=:7002,1.3=:7003 &
//	pigserver -id 1.2 -cluster 1.1=:7001,1.2=:7002,1.3=:7003 &
//	pigserver -id 1.3 -cluster 1.1=:7001,1.2=:7002,1.3=:7003 &
//
// The node whose ID sorts first is the initial leader. Use -protocol to
// select paxos/epaxos, -groups for PigPaxos relay groups, -wal-dir for a
// durable journal that survives crash-restart.
//
// On SIGTERM/SIGINT the server shuts down gracefully: it flushes the WAL
// on the event loop, drains queued outbound frames so peers see its last
// messages, then closes the transport. A second signal aborts immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pigpaxos/internal/cluster"
	"pigpaxos/internal/config"
	"pigpaxos/internal/epaxos"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/node"
	"pigpaxos/internal/paxos"
	"pigpaxos/internal/pigpaxos"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wal"
	"pigpaxos/internal/wire"
)

type handlerProxy struct{ h node.Handler }

func (p *handlerProxy) OnMessage(from ids.ID, m wire.Msg) {
	if p.h != nil {
		p.h.OnMessage(from, m)
	}
}

func main() {
	var (
		idStr      = flag.String("id", "", "this node's ID (zone.node)")
		clusterStr = flag.String("cluster", "", "comma-separated id=host:port list for every member")
		protocol   = flag.String("protocol", "pigpaxos", "pigpaxos | paxos | epaxos")
		groups     = flag.Int("groups", 2, "PigPaxos relay groups")
		relayTO    = flag.Duration("relay-timeout", 50*time.Millisecond, "relay aggregation timeout")
		electTO    = flag.Duration("election-timeout", 2*time.Second, "leader failover timeout (0 disables)")
		hb         = flag.Duration("hb", 0, "leader heartbeat interval (0 = library default)")
		readMode   = flag.String("reads", "log", "read path: log | lease | any (paxos/pigpaxos)")
		retryTO    = flag.Duration("retry-timeout", 250*time.Millisecond, "leader P2a retransmit timeout for lossy links (0 disables)")
		walDir     = flag.String("wal-dir", "", "directory for a durable write-ahead log (empty = in-memory only)")
		snapEvery  = flag.Int("snapshot-every", 4096, "with -wal-dir, checkpoint the state machine every N commits")
		drainTO    = flag.Duration("drain-timeout", time.Second, "graceful-shutdown budget for flushing outbound frames")

		batch      = flag.Int("batch", 0, "leader batch size (commands per slot, 0 = unbatched)")
		batchDelay = flag.Duration("batch-delay", 0, "max wait for an under-full batch (0 = flush immediately)")
		inflight   = flag.Int("inflight", 0, "leader pipelining window in slots (0 = unbounded)")
		maxPending = flag.Int("max-pending", 0, "leader ingress queue bound; excess requests get Busy (0 derives 4*inflight*batch, negative = unbounded)")
		queueTTL   = flag.Duration("queue-ttl", 0, "drop queued commands older than this at flush time (0 = never)")
		overloadLat = flag.Duration("overload-latency", 0, "shed with Busy while the commit-latency EWMA exceeds this (0 disables)")
	)
	flag.Parse()
	if *idStr == "" || *clusterStr == "" {
		fmt.Fprintln(os.Stderr, "usage: pigserver -id 1.1 -cluster 1.1=:7001,1.2=:7002,...")
		os.Exit(2)
	}
	self, err := cluster.ParseID(*idStr)
	if err != nil {
		log.Fatal(err)
	}
	addrs, members, err := cluster.ParseAddrs(*clusterStr)
	if err != nil {
		log.Fatal(err)
	}
	selfAddr, ok := addrs[self]
	if !ok {
		log.Fatalf("node %v is not in the cluster list", self)
	}
	cc := config.Cluster{Nodes: members, Addrs: addrs}
	if err := cc.Validate(); err != nil {
		log.Fatal(err)
	}
	var rm paxos.ReadMode
	switch *readMode {
	case "log":
		rm = paxos.ReadLog
	case "lease":
		rm = paxos.ReadLease
	case "any":
		rm = paxos.ReadAny
	default:
		log.Fatalf("unknown read mode %q (log|lease|any)", *readMode)
	}
	var st wal.Storage
	if *walDir != "" {
		fs, err := wal.OpenFile(*walDir)
		if err != nil {
			log.Fatalf("open wal: %v", err)
		}
		st = fs
	}
	base := paxos.Config{
		Cluster: cc, ID: self, InitialLeader: members[0],
		ElectionTimeout:   *electTO,
		HeartbeatInterval: *hb,
		ReadMode:          rm,
		RetryTimeout:      *retryTO,
		CompactEvery:      4096, // bound memory on long-running servers
		Storage:           st,
		SnapshotEvery:     *snapEvery,
		MaxBatchSize:      *batch,
		BatchDelay:        *batchDelay,
		MaxInFlight:       *inflight,
		MaxPending:        *maxPending,
		QueueTTL:          *queueTTL,
		OverloadLatency:   *overloadLat,
	}

	proxy := &handlerProxy{}
	tn, err := transport.ListenTCP(self, selfAddr, addrs, proxy)
	if err != nil {
		log.Fatal(err)
	}

	leader := members[0]
	var start func()
	switch *protocol {
	case "paxos":
		r := paxos.New(tn, base, nil)
		proxy.h = r
		start = r.Start
	case "epaxos":
		r := epaxos.New(tn, epaxos.Config{Cluster: cc, ID: self})
		proxy.h = r
		start = r.Start
	case "pigpaxos":
		r := pigpaxos.New(tn, pigpaxos.Config{
			Paxos:        base,
			NumGroups:    *groups,
			RelayTimeout: *relayTO,
		})
		proxy.h = r
		start = r.Start
	default:
		log.Fatalf("unknown protocol %q", *protocol)
	}

	// Run Start on the node's event loop to respect single-threading.
	tn.After(0, start)
	log.Printf("%s node %v serving on %s (leader: %v, %d members)",
		*protocol, self, tn.Addr(), leader, len(members))

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: flushing wal, draining transport")
	go func() { // a second signal aborts the graceful path
		<-sig
		log.Printf("second signal: aborting")
		os.Exit(1)
	}()

	// Flush the WAL on the event loop, where the replica appends, so the
	// final sync serializes after every accepted record.
	if st != nil {
		flushed := make(chan struct{})
		tn.After(0, func() {
			if _, err := st.Sync(); err != nil {
				log.Printf("wal flush: %v", err)
			}
			close(flushed)
		})
		select {
		case <-flushed:
		case <-time.After(*drainTO):
			log.Printf("wal flush timed out")
		}
	}
	// Drain queued outbound frames so peers receive our last protocol
	// messages (votes, acks) before the sockets die.
	if !tn.Drain(*drainTO) {
		log.Printf("transport drain timed out; closing anyway")
	}
	tn.Close()
	if st != nil {
		// The event loop has exited; closing the storage races nothing.
		if err := st.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	log.Printf("bye")
}
