// Command pigload is the open-loop TCP load tester: the sim-to-metal
// bridge that drives a real pigserver cluster with Poisson arrivals at a
// fixed aggregate rate and reports goodput plus latency percentiles
// (p50/p99/p99.9) in Go benchfmt, so cmd/benchjson turns runs into the
// same JSON artifacts CI publishes for the simulator benchmarks.
//
// Two ways to get a cluster:
//
//	pigload -cluster 1.1=h1:7001,1.2=h2:7001,1.3=h3:7001 -rate 2000
//	pigload -spawn 3 -server-bin ./pigserver -rate 2000
//
// -spawn forks one pigserver per member on free localhost ports, waits
// for readiness through the client path, runs the load, and tears the
// processes down (SIGTERM, then SIGKILL after the grace period).
//
// -sweep runs a rate ladder over one cluster bring-up — the §5.4
// saturation experiment: push past the knee and watch goodput flatten
// while latency diverges. Each step emits its own benchfmt line, so the
// sweep output plots directly.
//
//	pigload -spawn 3 -protocol pigpaxos -sweep 1000,4000,16000,64000
//
// -kill-leader-after kills the leader process mid-measurement (spawn mode
// only); maxgap-ns in the output bounds the availability hole the
// failover opened.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"pigpaxos/internal/cluster"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/loadgen"
	"pigpaxos/internal/workload"
)

func main() {
	var (
		clusterStr = flag.String("cluster", "", "existing cluster: comma-separated id=host:port list")
		spawn      = flag.Int("spawn", 0, "fork an n-node local cluster instead of -cluster")
		serverBin  = flag.String("server-bin", "./pigserver", "pigserver binary for -spawn")
		protocol   = flag.String("protocol", "pigpaxos", "protocol for -spawn: pigpaxos | paxos | epaxos")
		groups     = flag.Int("groups", 2, "PigPaxos relay groups for -spawn")
		walDir     = flag.String("wal-dir", "", "give each spawned server a durable WAL under this directory")
		electTO    = flag.Duration("election-timeout", 2*time.Second, "election timeout forwarded to spawned servers")
		hb         = flag.Duration("hb", 0, "heartbeat interval forwarded to spawned servers (0 = server default)")
		readyTO    = flag.Duration("ready-timeout", 20*time.Second, "cluster readiness budget")

		clients  = flag.Int("clients", 8, "open-loop worker count")
		rate     = flag.Float64("rate", 1000, "aggregate offered load, ops/sec")
		sweepStr = flag.String("sweep", "", "comma-separated rate ladder overriding -rate (e.g. 1000,4000,16000)")
		warmup   = flag.Duration("warmup", time.Second, "unrecorded warmup per step")
		duration = flag.Duration("duration", 5*time.Second, "measurement window per step")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-op abandonment timeout")
		inflight = flag.Int("max-inflight", 1024, "per-worker outstanding-op cap (arrivals beyond it are shed)")
		seed     = flag.Int64("seed", 1, "workload/arrival RNG seed")

		keys      = flag.Int("keys", 1000, "distinct keys")
		readRatio = flag.Float64("read-ratio", 0.5, "fraction of GETs")
		payload   = flag.Int("payload", 8, "write payload bytes")
		distStr   = flag.String("dist", "uniform", "key distribution: uniform | zipfian")
		theta     = flag.Float64("theta", 0.99, "zipfian skew")

		killAfter = flag.Duration("kill-leader-after", 0, "with -spawn: SIGKILL the leader this long into the measurement window")

		clientBaseF = flag.Uint64("client-base", 0, "first worker client ID (0 = derive a per-invocation base so warm-cluster reruns get fresh at-most-once sessions)")

		batch       = flag.Int("batch", 0, "forward to spawned servers: leader batch size (0 = unbatched)")
		batchDelay  = flag.Duration("batch-delay", 0, "forward to spawned servers: max under-full batch wait")
		srvInflight = flag.Int("server-inflight", 0, "forward to spawned servers: leader pipelining window")
		maxPending  = flag.Int("max-pending", 0, "forward to spawned servers: leader ingress bound (0 derives, negative = unbounded)")
		queueTTL    = flag.Duration("queue-ttl", 0, "forward to spawned servers: drop queued commands older than this")
		overloadLat = flag.Duration("overload-latency", 0, "forward to spawned servers: Busy-shed when commit EWMA exceeds this")

		gateFrac = flag.Float64("gate-goodput-frac", 0, "with -sweep: exit 1 unless the final rung's goodput is at least this fraction of the peak rung's (0 disables)")
	)
	flag.Parse()

	dist, err := workload.ParseDistribution(*distStr)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := parseSweep(*sweepStr, *rate)
	if err != nil {
		log.Fatal(err)
	}

	// Reject impossible flag combinations up front, before any cluster is
	// spawned or load is offered — failing mid-sweep wastes the whole run.
	if *killAfter > 0 {
		if *spawn == 0 {
			log.Fatal("-kill-leader-after needs -spawn")
		}
		if len(rates) > 1 {
			log.Fatal("-kill-leader-after cannot combine with -sweep (the leader only dies once)")
		}
	}
	if *gateFrac < 0 || *gateFrac > 1 {
		log.Fatalf("-gate-goodput-frac %v outside [0,1]", *gateFrac)
	}

	var (
		addrs   map[ids.ID]string
		members []ids.ID
		procs   *cluster.Procs
	)
	switch {
	case *spawn > 0 && *clusterStr != "":
		log.Fatal("-spawn and -cluster are mutually exclusive")
	case *spawn > 0:
		extra := []string{"-election-timeout", electTO.String()}
		if *hb > 0 {
			extra = append(extra, "-hb", hb.String())
		}
		if *batch > 0 {
			extra = append(extra, "-batch", strconv.Itoa(*batch))
		}
		if *batchDelay > 0 {
			extra = append(extra, "-batch-delay", batchDelay.String())
		}
		if *srvInflight > 0 {
			extra = append(extra, "-inflight", strconv.Itoa(*srvInflight))
		}
		if *maxPending != 0 {
			extra = append(extra, "-max-pending", strconv.Itoa(*maxPending))
		}
		if *queueTTL > 0 {
			extra = append(extra, "-queue-ttl", queueTTL.String())
		}
		if *overloadLat > 0 {
			extra = append(extra, "-overload-latency", overloadLat.String())
		}
		procs, err = cluster.Launch(cluster.ProcSpec{
			N:         *spawn,
			Protocol:  *protocol,
			Groups:    *groups,
			ServerBin: *serverBin,
			WALDir:    *walDir,
			ExtraArgs: extra,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer procs.StopAll(2 * time.Second)
		addrs, members = procs.Addrs, procs.Members
		log.Printf("spawned %d × %s: %s", *spawn, *protocol, cluster.FormatAddrs(addrs))
	case *clusterStr != "":
		addrs, members, err = cluster.ParseAddrs(*clusterStr)
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: pigload (-cluster 1.1=h:p,... | -spawn 3) [-rate R | -sweep R1,R2,...]")
		os.Exit(2)
	}

	if err := cluster.WaitReady(addrs, members, *readyTO); err != nil {
		if procs != nil {
			procs.StopAll(2 * time.Second)
		}
		log.Fatal(err)
	}
	log.Printf("cluster ready (%d members)", len(members))

	// A fresh client-ID base per invocation: pigload used to start every
	// run at 1, so a second run against a still-warm cluster reused the
	// first run's (ClientID, Seq) pairs and was answered from the
	// at-most-once session cache instead of executing. Derive a
	// time/PID-seeded base unless the caller pins one for reproduction.
	clientBase := *clientBaseF
	if clientBase == 0 {
		clientBase = uint64(time.Now().UnixNano())<<12 | uint64(os.Getpid()&0xfff)
	}
	log.Printf("client IDs start at %d", clientBase)

	exitCode := 0
	goodputs := make([]float64, 0, len(rates))
	for step, r := range rates {
		if *killAfter > 0 {
			leader := members[0]
			go func() {
				time.Sleep(*warmup + *killAfter)
				log.Printf("killing leader %v", leader)
				if err := procs.Kill(leader); err != nil {
					log.Printf("kill leader: %v", err)
				}
			}()
		}
		res, err := loadgen.Run(loadgen.Options{
			Addrs:        addrs,
			Members:      members,
			Clients:      *clients,
			Rate:         r,
			Warmup:       *warmup,
			Duration:     *duration,
			Timeout:      *timeout,
			MaxInFlight:  *inflight,
			Seed:            *seed + int64(step),
			ClientIDBase:    clientBase,
			ClientIDBaseSet: true,
			Workload: workload.Config{
				Keys:        *keys,
				ReadRatio:   *readRatio,
				PayloadSize: *payload,
				Dist:        dist,
				Theta:       *theta,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		// Fresh sessions per step: a reused client ID would have its new
		// ops deduplicated against the previous step's session window.
		clientBase += uint64(*clients)
		log.Printf("rate %.0f: %v", r, res)
		fmt.Println(benchLine(*protocol, len(members), *clients, r, res))
		goodputs = append(goodputs, res.Goodput)
		if res.Completed == 0 {
			exitCode = 1 // the run produced nothing; fail loudly in CI
		}
	}
	// The §5.4 flat-goodput gate: with admission control a sweep's final
	// (most oversubscribed) rung must hold near the peak rung's goodput
	// instead of collapsing under queueing.
	if *gateFrac > 0 && len(goodputs) > 1 {
		peak := 0.0
		for _, g := range goodputs {
			if g > peak {
				peak = g
			}
		}
		last := goodputs[len(goodputs)-1]
		if last < *gateFrac*peak {
			log.Printf("goodput gate FAILED: final rung %.0f/s < %.0f%% of peak %.0f/s",
				last, *gateFrac*100, peak)
			exitCode = 1
		} else {
			log.Printf("goodput gate ok: final rung %.0f/s ≥ %.0f%% of peak %.0f/s",
				last, *gateFrac*100, peak)
		}
	}
	if procs != nil {
		procs.StopAll(2 * time.Second)
		procs = nil
	}
	os.Exit(exitCode)
}

func parseSweep(s string, fallback float64) ([]float64, error) {
	if s == "" {
		return []float64{fallback}, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad sweep rate %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// benchLine renders one result in Go benchfmt so cmd/benchjson parses it:
// iterations = completed ops, ns/op = mean open-loop latency, extra
// metrics as (value, unit) pairs.
func benchLine(proto string, n, clients int, rate float64, res *loadgen.Result) string {
	name := fmt.Sprintf("BenchmarkTCPLoad/proto=%s/n=%d/clients=%d/rate=%.0f", proto, n, clients, rate)
	return fmt.Sprintf("%s %d %d ns/op %.1f goodput-ops/sec %.1f offered-ops/sec %d p50-ns %d p99-ns %d p999-ns %d maxgap-ns %d shed-ops %d busy-ops %d timeout-ops %d redirect-ops",
		name, res.Completed, res.Latency.Mean.Nanoseconds(),
		res.Goodput, res.OfferedRate,
		res.Latency.P50.Nanoseconds(), res.Latency.P99.Nanoseconds(), res.Latency.P999.Nanoseconds(),
		res.MaxGap.Nanoseconds(), res.Shed, res.Busy, res.Timeouts, res.Redirects)
}
