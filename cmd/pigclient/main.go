// Command pigclient is an interactive client for a pigserver cluster.
//
// Usage:
//
//	pigclient -server 127.0.0.1:7001 put mykey myvalue
//	pigclient -server 127.0.0.1:7001 get mykey
//	pigclient -server 127.0.0.1:7001 del mykey
//	pigclient -server 127.0.0.1:7001 -n 1000 bench
//
// Keys are hashed to the 64-bit key space with FNV-1a. Redirects (when the
// contacted node is a follower) are followed automatically if the leader's
// address is in -cluster; otherwise the redirect target is reported.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"strings"
	"time"

	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
)

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

type client struct {
	tn     *transport.TCPNode
	server ids.ID
	addrs  map[ids.ID]string
	// id must be unique per invocation: the cluster's at-most-once
	// session table is keyed on (ClientID, Seq), so a reused identity
	// would be answered from the previous invocation's cached replies
	// instead of executing.
	id        uint64
	replies   chan wire.Reply
	busy      chan wire.Busy
	seq       uint64
	redirects int
	retries   int
}

func (c *client) OnMessage(from ids.ID, m wire.Msg) {
	switch v := m.(type) {
	case wire.Reply:
		c.replies <- v
	case wire.Busy:
		c.busy <- v
	}
}

const maxRedirects = 8

func (c *client) do(cmd kvstore.Command) (wire.Reply, error) {
	c.seq++
	cmd.ClientID = c.id
	cmd.Seq = c.seq
	target := c.server
	c.tn.Send(target, wire.Request{Cmd: cmd})
	deadline := time.After(5 * time.Second)
	hops := 0
	for {
		select {
		case rep := <-c.replies:
			if rep.Seq != c.seq {
				continue // stale reply from an earlier op
			}
			if !rep.OK && !rep.Leader.IsZero() && rep.Leader != target {
				if hops++; hops > maxRedirects {
					return wire.Reply{}, fmt.Errorf("redirect chain exceeded %d hops", maxRedirects)
				}
				if _, known := c.addrs[rep.Leader]; !known {
					return wire.Reply{}, fmt.Errorf(
						"redirected to leader %v but its address is unknown; pass -cluster", rep.Leader)
				}
				c.redirects++
				target = rep.Leader
				c.tn.Send(target, wire.Request{Cmd: cmd})
				continue
			}
			// Stick with whoever answered so later ops skip the redirect.
			c.server = target
			return rep, nil
		case b := <-c.busy:
			if b.Seq != c.seq {
				continue // stale rejection from an earlier op
			}
			// The leader shed us under overload: wait out its hint and
			// retry the same seq (the rejection did not consume it).
			c.retries++
			time.Sleep(b.RetryAfter)
			c.tn.Send(target, wire.Request{Cmd: cmd})
		case <-deadline:
			return wire.Reply{}, fmt.Errorf("timed out")
		}
	}
}

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:7001", "any cluster member's address")
		cluster = flag.String("cluster", "", "optional id=host:port list for redirect following")
		n       = flag.Int("n", 1000, "operations for the bench subcommand")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pigclient [-server addr] put k v | get k | del k | bench")
		os.Exit(2)
	}

	serverID := ids.NewID(1, 1) // the transport routes by connection, the ID is nominal
	addrs := map[ids.ID]string{serverID: *server}
	if *cluster != "" {
		for _, part := range strings.Split(*cluster, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				log.Fatalf("bad cluster entry %q", part)
			}
			var zone, node int
			if _, err := fmt.Sscanf(kv[0], "%d.%d", &zone, &node); err != nil {
				log.Fatalf("bad id %q", kv[0])
			}
			addrs[ids.NewID(zone, node)] = kv[1]
		}
	}
	cl := &client{
		server:  serverID,
		addrs:   addrs,
		id:      uint64(time.Now().UnixNano())<<8 | uint64(os.Getpid()&0xff),
		replies: make(chan wire.Reply, 16),
		busy:    make(chan wire.Busy, 16),
	}
	tn, err := transport.ListenTCP(ids.NewID(999, 1), "127.0.0.1:0", addrs, cl)
	if err != nil {
		log.Fatal(err)
	}
	defer tn.Close()
	cl.tn = tn

	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("put needs key and value")
		}
		rep, err := cl.do(kvstore.Command{Op: kvstore.Put, Key: hashKey(args[1]), Value: []byte(args[2])})
		exitOn(err, rep)
		fmt.Printf("OK (slot %d)\n", rep.Slot)
	case "get":
		if len(args) != 2 {
			log.Fatal("get needs a key")
		}
		rep, err := cl.do(kvstore.Command{Op: kvstore.Get, Key: hashKey(args[1])})
		exitOn(err, rep)
		if !rep.Exists {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\n", rep.Value)
	case "del":
		if len(args) != 2 {
			log.Fatal("del needs a key")
		}
		rep, err := cl.do(kvstore.Command{Op: kvstore.Delete, Key: hashKey(args[1])})
		exitOn(err, rep)
		fmt.Printf("deleted=%v\n", rep.Exists)
	case "bench":
		start := time.Now()
		for i := 0; i < *n; i++ {
			_, err := cl.do(kvstore.Command{
				Op: kvstore.Put, Key: uint64(i % 1000), Value: []byte("benchvalue"),
			})
			if err != nil {
				log.Fatalf("op %d: %v", i, err)
			}
		}
		el := time.Since(start)
		fmt.Printf("%d ops in %v: %.0f op/s, %.2fms mean\n",
			*n, el.Round(time.Millisecond), float64(*n)/el.Seconds(),
			el.Seconds()*1000/float64(*n))
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func exitOn(err error, rep wire.Reply) {
	if err != nil {
		log.Fatal(err)
	}
	if !rep.OK {
		log.Fatalf("request failed; leader hint: %v", rep.Leader)
	}
}
