package main

import (
	"testing"
	"time"

	"pigpaxos/internal/cluster"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/transport"
	"pigpaxos/internal/wire"
)

// TestDoFollowsRedirectFromFollower aims the client's first request at a
// follower of a real TCP cluster and checks the redirect is followed, the
// op commits, and later ops go straight to the leader (stickiness).
func TestDoFollowsRedirectFromFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := cluster.StartInProc(cluster.InProcSpec{N: 3, Protocol: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	follower := c.Members[2]
	cl := &client{server: follower, addrs: c.Addrs, id: 51, replies: make(chan wire.Reply, 16)}
	tn, err := transport.ListenTCP(ids.NewID(999, 1), "127.0.0.1:0", c.Addrs, cl)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	cl.tn = tn

	rep, err := cl.do(kvstore.Command{Op: kvstore.Put, Key: hashKey("k"), Value: []byte("v")})
	if err != nil || !rep.OK {
		t.Fatalf("put via follower: %v %+v", err, rep)
	}
	if cl.redirects == 0 {
		t.Error("put against a follower committed without a redirect")
	}
	if cl.server != c.Members[0] {
		t.Errorf("client should stick to the leader %v, targets %v", c.Members[0], cl.server)
	}

	before := cl.redirects
	rep, err = cl.do(kvstore.Command{Op: kvstore.Get, Key: hashKey("k")})
	if err != nil || !rep.OK || string(rep.Value) != "v" {
		t.Fatalf("get after redirect: %v %+v", err, rep)
	}
	if cl.redirects != before {
		t.Errorf("sticky leader still redirected (%d → %d)", before, cl.redirects)
	}
}

// TestDoErrorsOnUnknownLeaderAddr strips the leader from the client's
// address book: the redirect must surface as an error naming the leader,
// not a silent 5s timeout.
func TestDoErrorsOnUnknownLeaderAddr(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP cluster")
	}
	c, err := cluster.StartInProc(cluster.InProcSpec{N: 3, Protocol: "paxos"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := cluster.WaitReady(c.Addrs, c.Members, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	partial := map[ids.ID]string{} // follower only — no leader route
	follower := c.Members[2]
	partial[follower] = c.Addrs[follower]
	cl := &client{server: follower, addrs: partial, id: 52, replies: make(chan wire.Reply, 16)}
	tn, err := transport.ListenTCP(ids.NewID(999, 2), "127.0.0.1:0", partial, cl)
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	cl.tn = tn

	start := time.Now()
	_, err = cl.do(kvstore.Command{Op: kvstore.Put, Key: 1, Value: []byte("v")})
	if err == nil {
		t.Fatal("put with unroutable leader must fail")
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("unknown-leader error took %v; must fail fast, not time out", time.Since(start))
	}
}
