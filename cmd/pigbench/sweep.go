// The sweep scenario: a large multi-protocol parallel exploration with
// automatic failure shrinking. It is the nightly CI's workhorse — explore
// many seeded schedules per protocol across worker goroutines, classify
// every failing result, minimize each failing schedule with
// harness.ShrinkScenario, and persist the minimized schedules in the
// regression-corpus format so they can be uploaded as artifacts and, once
// fixed, checked into internal/chaos/corpus.
package main

import (
	"fmt"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/harness"
)

// shrinkBudget bounds the scenario re-runs each failure's minimization may
// spend; failures are rare, so the budget is generous.
const shrinkBudget = 80

// sweepConfig is one protocol's slice of the sweep.
type sweepConfig struct {
	label string
	opts  harness.ScenarioOptions
}

// sweepConfigs covers the three protocols on LAN clusters plus the two
// leader-based protocols on the WAN topology — the palettes (and thus the
// fault families explored) differ per entry via ExploreSchedules defaults.
func sweepConfigs(suite harness.Suite, jobs int) []sweepConfig {
	lan := func(p harness.Protocol) harness.ScenarioOptions {
		o := scenarioBase(p, suite)
		o.Clients = 8
		o.OpsPerClient = 24
		o.Jobs = jobs
		return o
	}
	wan := func(p harness.Protocol) harness.ScenarioOptions {
		o := wanBase(p, suite)
		o.Jobs = jobs
		return o
	}
	return []sweepConfig{
		{"paxos", lan(harness.Paxos)},
		{"pigpaxos", lan(harness.PigPaxos)},
		{"epaxos", lan(harness.EPaxos)},
		{"paxos-wan", wan(harness.Paxos)},
		{"pigpaxos-wan", wan(harness.PigPaxos)},
	}
}

// runSweep explores runs schedules per protocol in parallel, shrinks every
// failure, and writes each minimized failing schedule as
// shrunk-<label>-<i>.json in the working directory (the nightly workflow
// uploads them as artifacts). Returns an error when any failure survives,
// so CI gates on a clean sweep.
func runSweep(suite harness.Suite, benchfmt bool, runs, jobs int) error {
	if runs <= 0 {
		runs = 12
		if suite.Measure < 2*time.Second {
			runs = 6
		}
	}
	fmt.Printf("# sweep: seed=%d runs=%d jobs=%d (re-run with -scenario sweep -seed %d to reproduce)\n",
		suite.Seed, runs, jobs, suite.Seed)
	failures := 0
	for _, cfg := range sweepConfigs(suite, jobs) {
		start := time.Now()
		scheds := harness.ExploreSchedules(cfg.opts, chaos.ExplorerOpts{Scenarios: runs})
		results := harness.RunScenarios(cfg.opts, scheds)
		elapsed := time.Since(start)

		failed := 0
		for i, r := range results {
			kind := r.Failure()
			if kind == "" {
				continue
			}
			failed++
			failures++
			fmt.Printf("# sweep/%s: scenario %d FAILED (%s), shrinking...\n", cfg.label, i, kind)
			res := harness.ShrinkScenario(cfg.opts, scheds[i], func(sr harness.ScenarioResult) bool {
				return sr.Failure() == kind
			}, shrinkBudget)
			entry := harness.CorpusEntryFor(cfg.opts, res.Schedule,
				fmt.Sprintf("shrunk-%s-%d", cfg.label, i),
				fmt.Sprintf("pigbench -scenario sweep -seed %d (scenario %d)", suite.Seed, i),
				kind)
			path, err := chaos.WriteCorpusEntry(".", entry)
			if err != nil {
				return fmt.Errorf("sweep: persisting shrunk schedule: %w", err)
			}
			fmt.Printf("# sweep/%s: shrunk %d→%d events in %d runs → %s\n",
				cfg.label, len(scheds[i]), len(res.Schedule), res.Runs, path)
		}
		if benchfmt {
			fmt.Printf("BenchmarkExplore/%s/sweep 1 %d scenarios %d failures %.2f scen-per-sec\n",
				cfg.label, len(results), failed, float64(len(results))/elapsed.Seconds())
		} else {
			fmt.Printf("%-14s scenarios=%-4d failures=%-3d wall=%v\n",
				cfg.label, len(results), failed, elapsed.Round(time.Millisecond))
		}
	}
	if failures > 0 {
		return fmt.Errorf("sweep: %d failing scenario(s) at seed %d; shrunk schedules written as shrunk-*.json", failures, suite.Seed)
	}
	return nil
}
