// Durable restart suite (-scenario restart): honest crash-restarts rebuilt
// from snapshot + WAL tail under the disk-fault chaos family, the fsync cost
// ablation, and a real-filesystem recovery-latency microbenchmark.
package main

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/config"
	"pigpaxos/internal/harness"
	"pigpaxos/internal/ids"
	"pigpaxos/internal/kvstore"
	"pigpaxos/internal/wal"
)

// printRestart renders one durable restart result. The benchfmt line feeds
// cmd/benchjson into BENCH_durable.json.
func printRestart(name string, r harness.ScenarioResult, deterministic, benchfmt bool) {
	if benchfmt {
		fmt.Printf("BenchmarkRestart/%s/%s 1 %.3f avail-gap-ms %.3f recovery-ms %.0f req/s %d acked %d linearizable %d recovered %d reboots %d snap-restores %d wal-syncs %d deterministic\n",
			r.Protocol, name,
			float64(r.AvailabilityGap.Microseconds())/1000,
			float64(r.RecoveryLatency.Microseconds())/1000,
			r.Throughput,
			r.Acked, b2i(r.Linearizable), b2i(r.AllComplete && r.Converged),
			r.Reboots, int(r.SnapRestores), int(r.WALSyncs), b2i(deterministic))
		return
	}
	fmt.Printf("%-10s %-22s acked=%-5d gap=%-12v reboots=%d snap-restores=%-3d wal-syncs=%-5d lin=%v recovered=%v deterministic=%v\n",
		r.Protocol, name, r.Acked, r.AvailabilityGap,
		r.Reboots, r.SnapRestores, r.WALSyncs,
		r.Linearizable, r.AllComplete && r.Converged, deterministic)
	for _, a := range r.FaultLog {
		fmt.Printf("    fault: %v\n", a)
	}
}

// runRestartSuite gates the durable deployment: every scenario must stay
// linearizable, complete and converged with the expected number of honest
// reboots, bit-identically across reruns at one seed.
func runRestartSuite(suite harness.Suite, benchfmt bool) error {
	nodes := config.NewLAN(9).Nodes
	for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
		o := scenarioBase(p, suite)
		o.Durable = true
		o.SnapshotEvery = 64
		at := o.Warmup + 300*time.Millisecond
		cases := []struct {
			name    string
			sched   chaos.Schedule
			reboots int
		}{
			{"restart-leader", chaos.LeaderRestart(at, 400*time.Millisecond), 1},
			{"torn-tail", chaos.TornRestart(nodes[len(nodes)-1], at, 300*time.Millisecond), 1},
			{"rolling-reboot", chaos.RollingReboot(nodes[len(nodes)-3:], at,
				150*time.Millisecond, 300*time.Millisecond), 3},
			{"disk-slow", chaos.DiskSlowWindow(nodes[0], 5*time.Millisecond, at,
				500*time.Millisecond), 0},
		}
		for _, tc := range cases {
			r := harness.RunScenario(o, tc.sched)
			again := harness.RunScenario(o, tc.sched)
			det := reflect.DeepEqual(r, again)
			printRestart(tc.name, r, det, benchfmt)
			if !r.Linearizable || !(r.AllComplete && r.Converged) {
				return fmt.Errorf("restart %s/%s: lin=%v recovered=%v",
					p, tc.name, r.Linearizable, r.AllComplete && r.Converged)
			}
			if r.Reboots != tc.reboots {
				return fmt.Errorf("restart %s/%s: %d reboots, want %d (faults %v)",
					p, tc.name, r.Reboots, tc.reboots, r.FaultLog)
			}
			if tc.name == "restart-leader" && r.SnapRestores == 0 {
				return fmt.Errorf("restart %s: leader rebooted without restoring a snapshot", p)
			}
			if !det {
				return fmt.Errorf("restart %s/%s: two runs at seed %d are not bit-identical",
					p, tc.name, o.Seed)
			}
		}
	}
	if err := fsyncAblation(suite, benchfmt); err != nil {
		return err
	}
	return recoveryBench(benchfmt)
}

// fsyncAblation measures what durability costs: the same fault-free run with
// the journal off (the volatile seed behaviour) and on (sync-before-vote at
// 400µs per fsync, group-committed per batch).
func fsyncAblation(suite harness.Suite, benchfmt bool) error {
	for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
		for _, durable := range []bool{false, true} {
			o := scenarioBase(p, suite)
			o.Durable = durable
			o.SnapshotEvery = 64
			name := "fsync-off"
			if durable {
				name = "fsync-on"
			}
			r := harness.RunScenario(o, nil)
			if !r.Linearizable || !(r.AllComplete && r.Converged) {
				return fmt.Errorf("durability %s/%s: lin=%v recovered=%v",
					p, name, r.Linearizable, r.AllComplete && r.Converged)
			}
			if benchfmt {
				fmt.Printf("BenchmarkDurability/%s/%s 1 %.0f req/s %.3f p99-ms %d wal-syncs %d snapshots\n",
					p, name, r.Throughput,
					float64(r.Latency.P99.Microseconds())/1000,
					int(r.WALSyncs), int(r.Snapshots))
				continue
			}
			fmt.Printf("%-10s %-22s tput=%-8.0f p99=%-10v wal-syncs=%-5d snapshots=%d\n",
				p, name, r.Throughput, r.Latency.P99, r.WALSyncs, r.Snapshots)
		}
	}
	return nil
}

// recoveryBench measures wall-clock crash recovery against snapshot age on a
// real filesystem: a FileStorage holding one checkpoint plus a journal tail
// of `age` committed slots is reopened and fully replayed — exactly the work
// a rebooting replica does before it rejoins. Older snapshots mean longer
// tails and proportionally slower recovery; that curve is the case for the
// snapshot cadence knob.
func recoveryBench(benchfmt bool) error {
	for _, age := range []int{256, 1024, 4096, 16384} {
		dir, err := os.MkdirTemp("", "pigbench-wal-*")
		if err != nil {
			return fmt.Errorf("recovery bench: %v", err)
		}
		st, err := wal.OpenFile(dir)
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("recovery bench: %v", err)
		}
		b := ids.NewBallot(1, ids.NewID(1, 1))
		if err := st.SaveSnapshot(wal.Snapshot{Floor: 1, Data: []byte{1}}); err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("recovery bench: %v", err)
		}
		var bytes int
		for slot := uint64(1); slot <= uint64(age); slot++ {
			cmds := []kvstore.Command{{Op: kvstore.Put, Key: slot, Value: []byte("payload-16-bytes"), ClientID: 7, Seq: slot}}
			for _, kind := range []wal.Kind{wal.KindAccept, wal.KindCommit} {
				if err := st.Append(wal.Record{Kind: kind, Ballot: b, Slot: slot, Cmds: cmds}); err != nil {
					os.RemoveAll(dir)
					return fmt.Errorf("recovery bench: %v", err)
				}
			}
			if slot%64 == 0 {
				if _, err := st.Sync(); err != nil {
					os.RemoveAll(dir)
					return fmt.Errorf("recovery bench: %v", err)
				}
			}
		}
		if _, err := st.Sync(); err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("recovery bench: %v", err)
		}
		st.Close()

		start := time.Now()
		re, err := wal.OpenFile(dir)
		if err != nil {
			os.RemoveAll(dir)
			return fmt.Errorf("recovery bench: reopen: %v", err)
		}
		var records int
		err = re.Replay(func(rec wal.Record) error {
			records++
			for _, c := range rec.Cmds {
				bytes += len(c.Value)
			}
			return nil
		})
		elapsed := time.Since(start)
		re.Close()
		os.RemoveAll(dir)
		if err != nil {
			return fmt.Errorf("recovery bench: replay: %v", err)
		}
		if records != 2*age {
			return fmt.Errorf("recovery bench: replayed %d records, want %d", records, 2*age)
		}
		if benchfmt {
			fmt.Printf("BenchmarkRecovery/tail=%d 1 %.3f ms %d records %d bytes\n",
				age, float64(elapsed.Microseconds())/1000, records, bytes)
			continue
		}
		fmt.Printf("recovery   tail=%-6d replay=%-10v records=%-6d payload=%dB\n",
			age, elapsed.Round(10*time.Microsecond), records, bytes)
	}
	return nil
}
