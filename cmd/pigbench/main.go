// Command pigbench regenerates the paper's evaluation: every figure (7-13)
// and both analytical tables (1-2), printed as aligned text tables.
//
// Usage:
//
//	pigbench -all            # run the full suite (several minutes)
//	pigbench -fig 8          # one figure
//	pigbench -table 1        # one table
//	pigbench -batch          # leader-batching sweep (batch size × protocol)
//	pigbench -quick          # reduced sweeps, faster and less precise
//
// All experiments run on the deterministic discrete-event simulator; equal
// seeds print equal numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pigpaxos/internal/harness"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "figure number to regenerate (7-13)")
		table = flag.Int("table", 0, "table number to regenerate (1-2)")
		util  = flag.Bool("util", false, "regenerate the §6.1 CPU utilization study")
		batch = flag.Bool("batch", false, "run the leader-batching sweep (batch size × protocol)")
		all   = flag.Bool("all", false, "run every figure and table")
		quick = flag.Bool("quick", false, "reduced sweeps (faster, coarser)")
		seed  = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	suite := harness.DefaultSuite()
	if *quick {
		suite = harness.QuickSuite()
	}
	suite.Seed = *seed

	runs := map[string]func() harness.Report{
		"fig7":   suite.Fig7RelayGroups,
		"fig8":   suite.Fig8Scalability25,
		"fig9":   suite.Fig9WAN,
		"fig10":  suite.Fig10Small5,
		"fig11":  suite.Fig11Small9,
		"fig12":  suite.Fig12PayloadSize,
		"fig13":  suite.Fig13FaultTolerance,
		"table1": suite.Table1MessageLoad,
		"table2": suite.Table2MessageLoad,
		"util":   suite.UtilizationReport,
		"batch":  suite.BatchSweep,
	}
	order := []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "util", "batch"}

	var selected []string
	switch {
	case *all:
		selected = order
	case *fig >= 7 && *fig <= 13:
		selected = []string{fmt.Sprintf("fig%d", *fig)}
	case *table == 1 || *table == 2:
		selected = []string{fmt.Sprintf("table%d", *table)}
	case *util:
		selected = []string{"util"}
	case *batch:
		selected = []string{"batch"}
	default:
		fmt.Fprintln(os.Stderr, "usage: pigbench -all | -fig 7..13 | -table 1..2 | -util | -batch [-quick] [-seed N]")
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		rep := runs[name]()
		fmt.Println(rep.String())
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
