// Command pigbench regenerates the paper's evaluation: every figure (7-13)
// and both analytical tables (1-2), printed as aligned text tables, plus the
// chaos scenario suite (leader-crash, relay-crash, seeded explorer,
// fault-intensity curve).
//
// Usage:
//
//	pigbench -all                 # run the full suite (several minutes)
//	pigbench -fig 8               # one figure
//	pigbench -table 1             # one table
//	pigbench -batch               # leader-batching sweep (batch size × protocol)
//	pigbench -scenario leader     # leader-crash scenario (also: relay, explore, faultcurve)
//	pigbench -scenario explore -benchfmt   # benchmark-formatted lines for cmd/benchjson
//	pigbench -quick               # reduced sweeps, faster and less precise
//
// All experiments run on the deterministic discrete-event simulator; equal
// seeds print equal numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"pigpaxos/internal/chaos"
	"pigpaxos/internal/config"
	"pigpaxos/internal/harness"
	"pigpaxos/internal/netsim"
	"pigpaxos/internal/shard"
	"pigpaxos/internal/workload"
)

// scenarioNames is the single source of truth for -scenario values: both
// the flag help and the unknown-scenario error render from it, so the two
// lists can never drift again (the error once omitted "restart").
var scenarioNames = []string{
	"leader", "relay", "explore", "faultcurve", "epaxoschaos",
	"wan", "regionpartition", "placement", "wanexplore", "epaxoswan",
	"shard", "restart", "sweep", "overload",
}

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure number to regenerate (7-13)")
		table    = flag.Int("table", 0, "table number to regenerate (1-2)")
		util     = flag.Bool("util", false, "regenerate the §6.1 CPU utilization study")
		batch    = flag.Bool("batch", false, "run the leader-batching sweep (batch size × protocol)")
		scenario = flag.String("scenario", "", "chaos scenario: "+strings.Join(scenarioNames, " | "))
		benchfmt = flag.Bool("benchfmt", false, "emit scenario results as go-bench lines (pipe into cmd/benchjson)")
		all      = flag.Bool("all", false, "run every figure and table")
		quick    = flag.Bool("quick", false, "reduced sweeps (faster, coarser)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		nRuns    = flag.Int("runs", 0, "sweep: explored schedules per protocol (default 12, 6 with -quick)")
		jobs     = flag.Int("jobs", 0, "explorer worker count: 0 = GOMAXPROCS, 1 = serial (equal seeds give bit-identical results at any value)")
	)
	flag.Parse()

	suite := harness.DefaultSuite()
	if *quick {
		suite = harness.QuickSuite()
	}
	suite.Seed = *seed

	if *scenario != "" {
		if err := runScenarios(*scenario, suite, *benchfmt, *nRuns, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, "pigbench:", err)
			os.Exit(2)
		}
		return
	}

	runs := map[string]func() harness.Report{
		"fig7":   suite.Fig7RelayGroups,
		"fig8":   suite.Fig8Scalability25,
		"fig9":   suite.Fig9WAN,
		"fig10":  suite.Fig10Small5,
		"fig11":  suite.Fig11Small9,
		"fig12":  suite.Fig12PayloadSize,
		"fig13":  suite.Fig13FaultTolerance,
		"table1": suite.Table1MessageLoad,
		"table2": suite.Table2MessageLoad,
		"util":   suite.UtilizationReport,
		"batch":  suite.BatchSweep,
	}
	order := []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "util", "batch"}

	var selected []string
	switch {
	case *all:
		selected = order
	case *fig >= 7 && *fig <= 13:
		selected = []string{fmt.Sprintf("fig%d", *fig)}
	case *table == 1 || *table == 2:
		selected = []string{fmt.Sprintf("table%d", *table)}
	case *util:
		selected = []string{"util"}
	case *batch:
		selected = []string{"batch"}
	default:
		fmt.Fprintln(os.Stderr, "usage: pigbench -all | -fig 7..13 | -table 1..2 | -util | -batch [-quick] [-seed N]")
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		rep := runs[name]()
		fmt.Println(rep.String())
		fmt.Printf("(generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

// b2i encodes a verdict flag for the benchfmt lines both printers emit.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// scenarioBase configures the shared chaos-scenario cluster: 9 nodes, 3
// relay groups, a dozen recorded clients.
func scenarioBase(p harness.Protocol, suite harness.Suite) harness.ScenarioOptions {
	o := harness.ScenarioOptions{}
	o.Protocol = p
	o.N = 9
	o.NumGroups = 3
	o.Clients = 12
	o.Warmup = suite.Warmup
	o.Measure = suite.Measure
	o.Seed = suite.Seed
	return o
}

// printScenario renders one result as a table row or a benchmark line
// (benchfmt is what CI pipes through cmd/benchjson into BENCH_chaos.json).
func printScenario(name string, r harness.ScenarioResult, benchfmt bool) {
	if benchfmt {
		fmt.Printf("BenchmarkScenario/%s/%s 1 %.3f avail-gap-ms %.3f recovery-ms %.0f req/s %.3f p99-ms %d acked %d linearizable %d recovered\n",
			r.Protocol, name,
			float64(r.AvailabilityGap.Microseconds())/1000,
			float64(r.RecoveryLatency.Microseconds())/1000,
			r.Throughput,
			float64(r.Latency.P99.Microseconds())/1000,
			r.Acked, b2i(r.Linearizable), b2i(r.AllComplete && r.Converged))
		return
	}
	fmt.Printf("%-10s %-22s acked=%-5d gap=%-12v recovery=%-12v p99=%-10v lin=%v recovered=%v\n",
		r.Protocol, name, r.Acked, r.AvailabilityGap, r.RecoveryLatency,
		r.Latency.P99, r.Linearizable, r.AllComplete && r.Converged)
	for _, a := range r.FaultLog {
		fmt.Printf("    fault: %v\n", a)
	}
}

// printEPaxosChaos renders one EPaxos chaos result with the two verdicts
// specific to its hardening: unrecovered instances and bit-identical
// reruns.
func printEPaxosChaos(name string, r harness.ScenarioResult, deterministic, benchfmt bool) {
	if benchfmt {
		fmt.Printf("BenchmarkScenario/%s/%s 1 %.3f avail-gap-ms %.3f recovery-ms %.0f req/s %.3f p99-ms %d acked %d linearizable %d recovered %d unrecovered %d deterministic\n",
			r.Protocol, name,
			float64(r.AvailabilityGap.Microseconds())/1000,
			float64(r.RecoveryLatency.Microseconds())/1000,
			r.Throughput,
			float64(r.Latency.P99.Microseconds())/1000,
			r.Acked, b2i(r.Linearizable), b2i(r.AllComplete && r.Converged),
			r.Unrecovered, b2i(deterministic))
		return
	}
	fmt.Printf("%-10s %-22s acked=%-5d gap=%-12v recovery=%-12v lin=%v recovered=%v unrecovered=%d deterministic=%v\n",
		r.Protocol, name, r.Acked, r.AvailabilityGap, r.RecoveryLatency,
		r.Linearizable, r.AllComplete && r.Converged, r.Unrecovered, deterministic)
	for _, a := range r.FaultLog {
		fmt.Printf("    fault: %v\n", a)
	}
}

// wanBase configures the shared WAN (Figure 9) scenario cluster: 9 nodes
// over three regions, zone-aligned relay groups, closed-loop clients homed
// in every region. Quick mode keeps the same offered-load shape with a
// shorter script.
func wanBase(p harness.Protocol, suite harness.Suite) harness.ScenarioOptions {
	ops := 20
	if suite.Measure < 2*time.Second {
		ops = 12
	}
	return harness.WANScenario(p, 9, 80, ops, suite.Seed)
}

// printRegions renders one WAN scenario result with its per-region
// breakdown, as a table block or as benchmark lines (one per region plus a
// cluster-wide summary line) for cmd/benchjson.
func printRegions(name string, r harness.ScenarioResult, benchfmt bool) {
	if benchfmt {
		fmt.Printf("BenchmarkWAN/%s/%s/cluster 1 %.3f mean-ms %.3f p99-ms %.3f avail-gap-ms %.0f req/s %d acked %d linearizable %d recovered\n",
			r.Protocol, name,
			float64(r.Latency.Mean.Microseconds())/1000,
			float64(r.Latency.P99.Microseconds())/1000,
			float64(r.AvailabilityGap.Microseconds())/1000,
			r.Throughput, r.Acked, b2i(r.Linearizable), b2i(r.AllComplete && r.Converged))
		for _, reg := range r.Regions {
			fmt.Printf("BenchmarkWAN/%s/%s/zone%d 1 %.3f mean-ms %.3f p99-ms %.3f avail-gap-ms %d acked %d stalls\n",
				r.Protocol, name, reg.Zone,
				float64(reg.Latency.Mean.Microseconds())/1000,
				float64(reg.Latency.P99.Microseconds())/1000,
				float64(reg.AvailabilityGap.Microseconds())/1000,
				reg.Acked, reg.Stalls)
		}
		return
	}
	fmt.Printf("%-10s %-18s acked=%-5d gap=%-12v p99=%-10v lin=%v recovered=%v\n",
		r.Protocol, name, r.Acked, r.AvailabilityGap, r.Latency.P99,
		r.Linearizable, r.AllComplete && r.Converged)
	for _, reg := range r.Regions {
		fmt.Printf("    %v\n", reg)
	}
	for _, a := range r.FaultLog {
		fmt.Printf("    fault: %v\n", a)
	}
}

// overloadBase configures the shared overload-sweep cluster: 25 nodes (the
// paper's headline size), batch 16 with the default window so the derived
// MaxPending = 4×4×16 = 256 bounds the leader's ingress queue, 64 open-loop
// clients. QueueTTL trims work that already exceeded the clients' patience,
// so a saturated leader never replicates dead commands.
func overloadBase(p harness.Protocol, suite harness.Suite) harness.OverloadOptions {
	o := harness.OverloadOptions{}
	o.Protocol = p
	o.N = 25
	o.NumGroups = 3
	o.Clients = 64
	o.BatchSize = 16
	o.Warmup = suite.Warmup
	o.Measure = suite.Measure
	o.Seed = suite.Seed
	o.OpTimeout = time.Second
	o.QueueTTL = time.Second
	return o
}

// printOverload renders one overload rung, as a table row or as a benchmark
// line for cmd/benchjson.
func printOverload(p harness.Protocol, r harness.OverloadResult, bound int, deterministic, benchfmt bool) {
	if benchfmt {
		fmt.Printf("BenchmarkOverload/%s/rate%.0f 1 %.1f goodput-ops/sec %.1f offered-ops/sec %.3f p50-ms %.3f p99-ms %d busy-ops %d shed-ops %d timeout-ops %d dropped-expired %d max-queue-depth %d queue-bound %d deterministic\n",
			p, r.Rate, r.Goodput, r.OfferedRate,
			float64(r.Latency.P50.Microseconds())/1000,
			float64(r.Latency.P99.Microseconds())/1000,
			r.Busy, r.Shed, r.Timeouts, r.DroppedExpired,
			r.MaxQueueDepth, bound, b2i(deterministic))
		return
	}
	fmt.Printf("%-10s %v qdepth=%d/%d deterministic=%v\n", p, r, r.MaxQueueDepth, bound, deterministic)
}

// shardBase configures the shared sharded cluster: 12 nodes (so four
// 3-member groups tile the membership disjointly) under 48 closed-loop
// clients — the aggregate client count every shard-count point shares.
func shardBase(p harness.Protocol, suite harness.Suite) harness.ShardedOptions {
	o := harness.ShardedOptions{}
	o.Protocol = p
	o.N = 12
	o.Clients = 48
	o.Warmup = suite.Warmup
	o.Measure = suite.Measure
	o.Seed = suite.Seed
	return o
}

// printShardSweep renders one scaling curve: aggregate throughput, speedup
// over the smallest swept shard count, latency, and the busiest shard's
// ack share (the hot-shard signal under a zipfian workload).
func printShardSweep(p harness.Protocol, dist workload.Distribution, pts []harness.ShardPoint, benchfmt bool) {
	for _, pt := range pts {
		if benchfmt {
			fmt.Printf("BenchmarkShardSweep/%s/%s/S%d 1 %.0f req/s %.3f speedup %.3f mean-ms %.3f p99-ms %.3f hot-share\n",
				p, dist, pt.Shards, pt.Throughput, pt.SpeedupVsMin, pt.MeanLatMs, pt.P99Ms, pt.HotShardShare)
			continue
		}
		fmt.Printf("%-10s %-8s S=%d tput=%-8.0f speedup=%-6.2f mean=%-8.3fms p99=%-8.3fms hot-share=%.2f\n",
			p, dist, pt.Shards, pt.Throughput, pt.SpeedupVsMin, pt.MeanLatMs, pt.P99Ms, pt.HotShardShare)
	}
}

// printShardScenario renders one sharded chaos result with its per-shard
// availability slices and the blast-radius verdict.
func printShardScenario(name string, r harness.ShardedScenarioResult, untouchedStalls int, deterministic, benchfmt bool) {
	if benchfmt {
		fmt.Printf("BenchmarkShardScenario/%s/%s 1 %.0f req/s %.3f p99-ms %d acked %d linearizable %d recovered %d untouched-stalls %d deterministic\n",
			r.Protocol, name, r.Throughput,
			float64(r.Latency.P99.Microseconds())/1000,
			r.Acked, b2i(r.Linearizable), b2i(r.AllComplete && r.Converged),
			untouchedStalls, b2i(deterministic))
		for _, sl := range r.PerShard {
			fmt.Printf("BenchmarkShardScenario/%s/%s/shard%d 1 %d acked %.3f avail-gap-ms %d stalls\n",
				r.Protocol, name, sl.Shard, sl.Acked,
				float64(sl.AvailabilityGap.Microseconds())/1000, sl.Stalls)
		}
		return
	}
	fmt.Printf("%-10s %-18s acked=%-5d lin=%v recovered=%v untouched-stalls=%d deterministic=%v\n",
		r.Protocol, name, r.Acked, r.Linearizable, r.AllComplete && r.Converged,
		untouchedStalls, deterministic)
	for _, sl := range r.PerShard {
		fmt.Printf("    shard %d: acked=%-5d gap=%-12v stalls=%d\n", sl.Shard, sl.Acked, sl.AvailabilityGap, sl.Stalls)
	}
	for _, a := range r.FaultLog {
		fmt.Printf("    fault: %v\n", a)
	}
}

// runScenarios executes the named chaos suite. jobs fans explorer-driven
// suites across workers (0 = GOMAXPROCS); runs sizes the sweep scenario.
func runScenarios(name string, suite harness.Suite, benchfmt bool, runs, jobs int) error {
	switch name {
	case "wan":
		// Figure 9: Paxos vs PigPaxos per-region client latency on the
		// three-region deployment, fault-free, under closed-loop load. The
		// leader-bottleneck separation shows up in every region's mean.
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			printRegions("wan", harness.RunScenario(wanBase(p, suite), nil), benchfmt)
		}
	case "regionpartition":
		// Whole-region outages: first a minority region (Oregon) loses its
		// WAN uplinks — the majority side must sail on while the marooned
		// region stalls — then the leader's own region (Virginia) is cut,
		// forcing a cross-region failover. Both heal before the deadline.
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			o := wanBase(p, suite)
			at := o.Warmup + 300*time.Millisecond
			cut := chaos.RegionCut(config.ZoneOregon, at, 600*time.Millisecond)
			printRegions("cut-minority", harness.RunScenario(o, cut), benchfmt)
			cut = chaos.RegionCut(config.ZoneVirginia, at, 600*time.Millisecond)
			printRegions("cut-leader", harness.RunScenario(o, cut), benchfmt)
		}
	case "placement":
		// Leader placement flip: force a campaign from California
		// mid-window and measure what the move costs (one ballot
		// handover's availability gap) and how the per-region latency
		// profile shifts toward the new leader's neighbors.
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			o := wanBase(p, suite)
			flip := chaos.PlacementFlip(config.ZoneCalifornia, o.Warmup+o.Measure/2)
			printRegions("placement-flip", harness.RunScenario(o, flip), benchfmt)
		}
	case "wanexplore":
		// Seeded random region-fault schedules (WANPalette): partitions,
		// WAN-path degradation, region crashes, placement flips.
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			o := wanBase(p, suite)
			o.Jobs = jobs
			results := harness.ExploreScenarios(o, chaos.ExplorerOpts{Scenarios: 3})
			for i, r := range results {
				printRegions(fmt.Sprintf("explore/%d", i), r, benchfmt)
			}
		}
	case "leader":
		// The paper's leader-failover story: kill the current leader
		// mid-window, measure the gap until the new leader serves.
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			o := scenarioBase(p, suite)
			at := o.Warmup + 300*time.Millisecond
			printScenario("leader-crash", harness.RunScenario(o, chaos.LeaderCrash(at, 500*time.Millisecond)), benchfmt)
		}
	case "relay":
		// Figure 5b: kill the relay currently carrying group 0; the leader
		// re-fans-out with fresh relays after its timeout.
		o := scenarioBase(harness.PigPaxos, suite)
		at := o.Warmup + 300*time.Millisecond
		printScenario("relay-crash", harness.RunScenario(o, chaos.RelayCrash(0, at, 400*time.Millisecond)), benchfmt)
	case "explore":
		// Seeded random schedules per protocol, palettes matched to what
		// each implementation tolerates (see harness.ExploreScenarios).
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos, harness.EPaxos} {
			o := scenarioBase(p, suite)
			o.Jobs = jobs
			results := harness.ExploreScenarios(o, chaos.ExplorerOpts{Scenarios: 3})
			for i, r := range results {
				printScenario(fmt.Sprintf("explore/%d", i), r, benchfmt)
			}
		}
	case "epaxoschaos":
		// EPaxos under the full fault hose: a command leader crashes
		// mid-window while probabilistic loss and duplication chew on the
		// links — Explicit Prepare recovery, the retransmit sweep and the
		// session tables must deliver a clean bill (linearizable,
		// converged, zero unrecovered instances), bit-identically at equal
		// seeds. The explorer then runs the full EPaxos palette.
		o := scenarioBase(harness.EPaxos, suite)
		at := o.Warmup + 300*time.Millisecond
		sched := chaos.Merge(
			chaos.LeaderCrash(at, 500*time.Millisecond),
			chaos.FlakyLinks(netsim.LinkFaults{Loss: 0.05, Duplicate: 0.02},
				at+100*time.Millisecond, 600*time.Millisecond),
		)
		r := harness.RunScenario(o, sched)
		again := harness.RunScenario(o, sched)
		printEPaxosChaos("crash+loss", r, reflect.DeepEqual(r, again), benchfmt)
		if r.Unrecovered != 0 || !r.Linearizable || !(r.AllComplete && r.Converged) {
			return fmt.Errorf("epaxoschaos: unrecovered=%d lin=%v recovered=%v",
				r.Unrecovered, r.Linearizable, r.AllComplete && r.Converged)
		}
		if !reflect.DeepEqual(r, again) {
			return fmt.Errorf("epaxoschaos: two runs at seed %d are not bit-identical", o.Seed)
		}
		o.Jobs = jobs
		ex := chaos.ExplorerOpts{Scenarios: 3, Allow: chaos.EPaxosPalette()}
		results := harness.ExploreScenarios(o, ex)
		rerun := harness.ExploreScenarios(o, ex)
		for i, er := range results {
			det := reflect.DeepEqual(er, rerun[i])
			printEPaxosChaos(fmt.Sprintf("explore/%d", i), er, det, benchfmt)
			if er.Unrecovered != 0 || !er.Linearizable || !(er.AllComplete && er.Converged) || !det {
				return fmt.Errorf("epaxoschaos explore/%d: unrecovered=%d lin=%v recovered=%v deterministic=%v",
					i, er.Unrecovered, er.Linearizable, er.AllComplete && er.Converged, det)
			}
		}
	case "epaxoswan":
		// EPaxos on the Figure-9 deployment under region faults: a
		// minority region loses its WAN uplinks (its clients marooned with
		// it), then one WAN path degrades with loss and reordering. The
		// commit-floor gossip must converge the marooned replicas after
		// the heal. The offered load is a third of the Paxos-family WAN
		// suite's: every EPaxos commit pays a seven-member quorum across
		// the WAN, so the Figure-9 closed-loop client fleet would swamp it
		// and the scripts could never drain.
		o := harness.WANScenario(harness.EPaxos, 9, 24, 10, suite.Seed)
		at := o.Warmup + 300*time.Millisecond
		cut := chaos.RegionCut(config.ZoneOregon, at, 600*time.Millisecond)
		printRegions("cut-minority", harness.RunScenario(o, cut), benchfmt)
		deg := chaos.DegradeWANPair(config.ZoneVirginia, config.ZoneCalifornia,
			netsim.LinkFaults{Loss: 0.05, Reorder: 0.1, ReorderWindow: 2 * time.Millisecond},
			at, 800*time.Millisecond)
		printRegions("wan-degrade", harness.RunScenario(o, deg), benchfmt)
	case "shard":
		// Horizontal scaling: the key space partitioned across S independent
		// consensus groups at equal aggregate client count, S ∈ {1,2,4,8},
		// uniform and zipfian keys, for both leader-based protocols. Gated
		// on the sharding layer's acceptance bar: ≥3× aggregate throughput
		// at S=4 under uniform keys.
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			for _, dist := range []workload.Distribution{workload.Uniform, workload.Zipfian} {
				o := shardBase(p, suite)
				o.Workload = workload.Config{Dist: dist}
				pts := harness.ShardSweep(o, harness.DefaultShardSweep)
				printShardSweep(p, dist, pts, benchfmt)
				if dist != workload.Uniform {
					continue
				}
				for _, pt := range pts {
					if pt.Shards == 4 && pt.SpeedupVsMin < 3 {
						return fmt.Errorf("shard: %s S=4 speedup %.2f× under uniform keys, want ≥3×", p, pt.SpeedupVsMin)
					}
				}
			}
		}
		// Blast radius under chaos: crash shard 0's leader mid-window; the
		// cross-shard history must stay linearizable, every script must
		// drain, shards the victim does not replicate must record zero
		// stalls, and two runs at one seed must be bit-identical.
		o := shardBase(harness.PigPaxos, suite)
		o.Shards = 4
		o.Clients = 16
		o.OpsPerClient = 24
		if suite.Measure < 2*time.Second {
			o.Measure = 2 * time.Second
		}
		sched := chaos.ShardLeaderCrash(0, o.Warmup+o.Measure/4, o.Measure/2)
		r := harness.RunShardedScenario(o, sched)
		again := harness.RunShardedScenario(o, sched)
		det := reflect.DeepEqual(r, again)
		if len(r.FaultLog) == 0 || r.FaultLog[0].Kind != chaos.CrashShardLeader {
			return fmt.Errorf("shard: no shard-leader crash in the fault log: %v", r.FaultLog)
		}
		touched := map[int]bool{}
		plan := shard.Plan(config.NewLAN(o.N), o.Shards, 0)
		for _, k := range plan.ShardsOn(r.FaultLog[0].Target) {
			touched[k] = true
		}
		untouchedStalls := 0
		for _, sl := range r.PerShard {
			if !touched[sl.Shard] {
				untouchedStalls += sl.Stalls
			}
		}
		printShardScenario("leader-crash", r, untouchedStalls, det, benchfmt)
		if !r.Linearizable || !(r.AllComplete && r.Converged) {
			return fmt.Errorf("shard: lin=%v recovered=%v", r.Linearizable, r.AllComplete && r.Converged)
		}
		if untouchedStalls != 0 {
			return fmt.Errorf("shard: %d stalls on shards the victim does not replicate — blast radius escaped", untouchedStalls)
		}
		if !det {
			return fmt.Errorf("shard: two runs at seed %d are not bit-identical", o.Seed)
		}
	case "restart":
		// Durable deployments: honest crash-restarts from snapshot + WAL
		// tail (leader restart, torn journal tail, rolling follower
		// reboots, a slow-disk window), the fsync cost ablation, and the
		// recovery-latency-vs-snapshot-age curve on a real filesystem.
		return runRestartSuite(suite, benchfmt)
	case "sweep":
		// Large multi-protocol parallel exploration: runs schedules per
		// protocol across jobs workers, classifies failures, auto-shrinks
		// each one, and persists the minimized schedules in corpus format.
		return runSweep(suite, benchfmt, runs, jobs)
	case "overload":
		// The §5.4 saturation sweep under admission control: an open-loop
		// Poisson rate ladder pushed ~8× past the knee for both
		// leader-based protocols. Gated on what the bounded-ingress change
		// promises: leader queue depth never exceeds the derived
		// MaxPending, the top rung's goodput holds ≥80% of the peak
		// rung's, and two sweeps at one seed are bit-identical.
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			o := overloadBase(p, suite)
			rates := []float64{5000, 10000, 20000, 40000, 80000, 160000}
			results := harness.OverloadSweep(o, rates)
			again := harness.OverloadSweep(o, rates)
			det := reflect.DeepEqual(results, again)
			bound := 4 * 4 * 16 // the derived MaxPending: 4 × window × batch
			peak, last := 0.0, 0.0
			for _, r := range results {
				if r.Goodput > peak {
					peak = r.Goodput
				}
				last = r.Goodput
				printOverload(p, r, bound, det, benchfmt)
				if r.MaxQueueDepth > uint64(bound) {
					return fmt.Errorf("overload: %s queue depth %d exceeds MaxPending %d",
						p, r.MaxQueueDepth, bound)
				}
			}
			if last < 0.8*peak {
				return fmt.Errorf("overload: %s top-rung goodput %.0f/s < 80%% of peak %.0f/s",
					p, last, peak)
			}
			if !det {
				return fmt.Errorf("overload: two sweeps at seed %d are not bit-identical", o.Seed)
			}
		}
	case "faultcurve":
		for _, p := range []harness.Protocol{harness.Paxos, harness.PigPaxos} {
			o := scenarioBase(p, suite)
			for _, pt := range harness.FaultCurve(o, 3) {
				if benchfmt {
					lin := 0
					if pt.Linearizable {
						lin = 1
					}
					rec := 0
					if pt.Recovered {
						rec = 1
					}
					fmt.Printf("BenchmarkScenario/%s/faultcurve/%d 1 %.3f avail-gap-ms %.0f req/s %.3f p99-ms %d linearizable %d recovered\n",
						p, pt.Crashes,
						float64(pt.AvailabilityGap.Microseconds())/1000,
						pt.Throughput,
						float64(pt.P99.Microseconds())/1000, lin, rec)
					continue
				}
				fmt.Printf("%-10s crashes=%d tput=%-8.0f gap=%-12v p99=%-10v lin=%v recovered=%v\n",
					p, pt.Crashes, pt.Throughput, pt.AvailabilityGap, pt.P99, pt.Linearizable, pt.Recovered)
			}
		}
	default:
		return fmt.Errorf("unknown -scenario %q (want %s)", name, strings.Join(scenarioNames, ", "))
	}
	return nil
}
