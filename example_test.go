package pigpaxos_test

import (
	"fmt"
	"time"

	"pigpaxos"
)

// ExampleNewCluster shows the minimal embedded-cluster workflow: start five
// replicas, write, read, shut down.
func ExampleNewCluster() {
	cluster, err := pigpaxos.NewCluster(pigpaxos.Options{
		N:           5,
		Protocol:    pigpaxos.ProtocolPigPaxos,
		RelayGroups: 2,
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	client, err := cluster.Client()
	if err != nil {
		panic(err)
	}
	if err := client.Put(1, []byte("hello")); err != nil {
		panic(err)
	}
	v, found, err := client.Get(1)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(v), found)
	// Output: hello true
}

// ExampleBench runs one deterministic simulated benchmark: a 9-node
// PigPaxos cluster under 20 closed-loop clients.
func ExampleBench() {
	r := pigpaxos.Bench(pigpaxos.BenchOptions{
		Protocol:    pigpaxos.ProtocolPigPaxos,
		N:           9,
		RelayGroups: 3,
		Clients:     20,
		Warmup:      100 * time.Millisecond,
		Measure:     500 * time.Millisecond,
		Seed:        1,
	})
	// Deterministic: the same seed always yields the same measurement.
	fmt.Println(r.Throughput > 1000, r.MeanLatency > 0)
	// Output: true true
}

// ExampleClient_QuorumRead reads through the Paxos-Quorum-Read path, which
// probes a majority of replicas and never touches the leader.
func ExampleClient_QuorumRead() {
	cluster, err := pigpaxos.NewCluster(pigpaxos.Options{N: 3})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	client, _ := cluster.Client()
	if err := client.Put(7, []byte("leaderless read")); err != nil {
		panic(err)
	}
	// Commit watermarks propagate on heartbeats; wait for a majority of
	// stores to hold the write.
	var v []byte
	var found bool
	for i := 0; i < 300; i++ {
		v, found, err = client.QuorumRead(7)
		if err == nil && found {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println(string(v), found)
	// Output: leaderless read true
}
