// WAN replication study: the paper's Figure 9 scenario as a library call —
// a 15-node cluster spread over Virginia, California and Oregon, one relay
// group per region, PigPaxos vs Paxos under increasing load.
//
// The runs execute on the deterministic simulator (virtual EC2), so this
// example finishes in seconds and prints the same numbers every time.
//
//	go run ./examples/wan
package main

import (
	"fmt"
	"time"

	"pigpaxos"
)

func main() {
	fmt.Println("15-node WAN cluster (Virginia/California/Oregon), 1000-key 50/50 workload")
	fmt.Printf("%-10s %8s %14s %12s %10s\n", "protocol", "clients", "throughput", "mean lat", "p99")

	for _, proto := range []pigpaxos.Protocol{pigpaxos.ProtocolPaxos, pigpaxos.ProtocolPigPaxos} {
		for _, clients := range []int{10, 50, 200, 400} {
			r := pigpaxos.Bench(pigpaxos.BenchOptions{
				Protocol:    proto,
				N:           15,
				WAN:         true, // 3 regions; PigPaxos groups by zone (§6.4)
				Clients:     clients,
				RelayGroups: 3,
				Warmup:      500 * time.Millisecond,
				Measure:     2 * time.Second,
			})
			fmt.Printf("%-10s %8d %10.0f/s %12v %10v\n",
				proto, clients, r.Throughput,
				r.MeanLatency.Round(100*time.Microsecond),
				r.P99Latency.Round(100*time.Microsecond))
		}
	}

	fmt.Println()
	fmt.Println("Note the paper's Figure 9 shape: at low load the WAN RTT dominates and")
	fmt.Println("the protocols are indistinguishable; at high load Paxos saturates on")
	fmt.Println("leader messaging while PigPaxos keeps scaling. With zone grouping the")
	fmt.Println("leader sends one message per remote region per round instead of one per")
	fmt.Println("remote replica — a 3-5x WAN traffic saving (§6.4).")
}
