// Payload-size study: the paper's Figure 12 scenario as a library call —
// how maximum throughput of 25-node Paxos and PigPaxos degrades as the
// replicated value grows from 8 to 1280 bytes (write-only workload).
//
// PigPaxos' advantage persists across payload sizes because relays, not the
// leader, pay the per-byte fan-out cost to the followers (§5.6).
//
//	go run ./examples/payload
package main

import (
	"fmt"
	"time"

	"pigpaxos"
)

func main() {
	payloads := []int{8, 128, 512, 1280}
	fmt.Println("25-node cluster, write-only workload, 150 clients (paper §5.6)")
	fmt.Printf("%-12s %16s %16s %8s\n", "payload", "Paxos", "PigPaxos(r=3)", "ratio")

	for _, size := range payloads {
		run := func(p pigpaxos.Protocol) float64 {
			return pigpaxos.Bench(pigpaxos.BenchOptions{
				Protocol:    p,
				N:           25,
				Clients:     150,
				RelayGroups: 3,
				WriteOnly:   true,
				PayloadSize: size,
				Warmup:      500 * time.Millisecond,
				Measure:     2 * time.Second,
			}).Throughput
		}
		paxos := run(pigpaxos.ProtocolPaxos)
		pig := run(pigpaxos.ProtocolPigPaxos)
		fmt.Printf("%-12s %12.0f/s %12.0f/s %7.1fx\n",
			fmt.Sprintf("%d bytes", size), paxos, pig, pig/paxos)
	}

	fmt.Println()
	fmt.Println("Both protocols degrade by a similar relative amount as payloads grow")
	fmt.Println("(the paper's Figure 12b normalization), but PigPaxos' absolute lead")
	fmt.Println("holds: the leader ships r copies of each value instead of N−1.")
}
