// Failover: crash the PigPaxos leader mid-workload and watch the cluster
// elect a new one (through relayed phase-1) while the client retries
// transparently — the fault-tolerance story of §3.4.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"pigpaxos"
)

func main() {
	cluster, err := pigpaxos.NewCluster(pigpaxos.Options{
		N:           5,
		RelayGroups: 2,
		// Short timeouts so the demo fails over quickly; production
		// values would be larger.
		ElectionTimeout: 200 * time.Millisecond,
		RelayTimeout:    20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.Client()
	if err != nil {
		log.Fatal(err)
	}
	client.SetTimeout(10 * time.Second)

	if err := client.Put(1, []byte("written under the old regime")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote key 1 under the initial leader (node 1)")

	fmt.Println("crashing the leader…")
	if err := cluster.StopNode(cluster.Leader()); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := client.Put(2, []byte("written after failover")); err != nil {
		log.Fatalf("write after leader crash: %v", err)
	}
	fmt.Printf("wrote key 2 after failover (took %v including election)\n",
		time.Since(start).Round(time.Millisecond))

	// Both writes survive: the old one was committed by the old leader,
	// the new one by its successor.
	for _, key := range []uint64{1, 2} {
		v, ok, err := client.Get(key)
		if err != nil || !ok {
			log.Fatalf("get %d after failover: %v %v", key, ok, err)
		}
		fmt.Printf("key %d = %q\n", key, v)
	}
	fmt.Println("cluster survived f=1 crash out of N=5, as §3.4 promises (f of 2f+1)")
}
