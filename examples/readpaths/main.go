// Read paths: the three ways §4.3 discusses for reading a Paxos-backed
// state machine, measured side by side on an embedded cluster:
//
//   - log-serialized reads (the paper's default): one consensus round each;
//
//   - leader lease reads: served locally at the leader under a
//     majority-acknowledged heartbeat lease;
//
//   - Paxos Quorum Reads (PQR): version probes to a majority, bypassing the
//     leader entirely.
//
//     go run ./examples/readpaths
package main

import (
	"fmt"
	"log"
	"time"

	"pigpaxos"
)

func measure(name string, n int, read func(key uint64) error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := read(uint64(i % 10)); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	el := time.Since(start)
	fmt.Printf("%-18s %6d reads in %8v  (%.2fms/read)\n",
		name, n, el.Round(time.Millisecond), el.Seconds()*1000/float64(n))
}

func main() {
	const reads = 500

	// One cluster per mode (the read path is a cluster-wide setting).
	for _, mode := range []struct {
		name string
		rm   pigpaxos.ReadMode
	}{
		{"log-serialized", pigpaxos.ReadLog},
		{"leader-lease", pigpaxos.ReadLease},
	} {
		cluster, err := pigpaxos.NewCluster(pigpaxos.Options{
			N: 5, RelayGroups: 2, ReadMode: mode.rm,
		})
		if err != nil {
			log.Fatal(err)
		}
		client, _ := cluster.Client()
		for i := uint64(0); i < 10; i++ {
			if err := client.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
				log.Fatal(err)
			}
		}
		if mode.rm == pigpaxos.ReadLease {
			time.Sleep(120 * time.Millisecond) // let heartbeat acks grant the lease
		}
		measure(mode.name, reads, func(key uint64) error {
			_, _, err := client.Get(key)
			return err
		})
		if mode.rm == pigpaxos.ReadLog {
			// PQR works on the same cluster: probe a majority directly.
			time.Sleep(120 * time.Millisecond) // watermark flush
			measure("quorum-read (PQR)", reads, func(key uint64) error {
				_, _, err := client.QuorumRead(key)
				return err
			})
		}
		cluster.Close()
	}

	fmt.Println()
	fmt.Println("Log-serialized reads pay a full consensus round each. Lease reads cost")
	fmt.Println("one client round trip once heartbeat acks establish the lease. PQR")
	fmt.Println("costs one round trip to a majority and needs no leader or leases — the")
	fmt.Println("path §4.3 recommends combining with PigPaxos' relay trees.")
}
