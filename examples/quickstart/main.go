// Quickstart: a 5-node PigPaxos cluster in one process, basic KV usage,
// and a replica-convergence check.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pigpaxos"
)

func main() {
	// Five replicas, two relay groups: the leader talks to 2 relays per
	// command instead of 4 followers — the paper's §5.5 configuration.
	cluster, err := pigpaxos.NewCluster(pigpaxos.Options{
		N:           5,
		Protocol:    pigpaxos.ProtocolPigPaxos,
		RelayGroups: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.Client()
	if err != nil {
		log.Fatal(err)
	}

	// Writes serialize through the replicated log.
	if err := client.Put(42, []byte("devouring bottlenecks")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("put key 42")

	// Reads are linearizable: they serialize through the log too.
	v, ok, err := client.Get(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get key 42: %q (found=%v)\n", v, ok)

	if _, err := client.Delete(42); err != nil {
		log.Fatal(err)
	}
	fmt.Println("deleted key 42")

	// Write a burst and verify every replica converges to the same state
	// (commit watermarks piggyback on phase-2 traffic and heartbeats).
	for i := uint64(0); i < 100; i++ {
		if err := client.Put(i, []byte{byte(i)}); err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		applied := cluster.StoreApplied()
		same := true
		for _, a := range applied {
			if a != applied[0] {
				same = false
			}
		}
		if same {
			sums := cluster.StoreChecksums()
			fmt.Printf("all %d replicas applied %d commands, checksum %x\n",
				cluster.N(), applied[0], sums[0])
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("replicas did not converge: %v", applied)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
