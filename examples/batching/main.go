// Batching study: leader-side command batching with a bounded pipelining
// window, applied to both Multi-Paxos and PigPaxos on the 25-node cluster.
//
// The paper's core argument is that the leader's per-message CPU cost caps
// throughput — 2(N−1)+2 messages per command for Paxos, 2r+2 for PigPaxos.
// Packing B commands into one log slot amortizes that round over the whole
// batch, so saturation throughput multiplies for both protocols while
// messages-per-command collapses. BatchSize 1 is the paper's unbatched
// baseline (Paxos ≈ 2k, PigPaxos ≈ 7–9k req/s).
//
//	go run ./examples/batching
package main

import (
	"fmt"
	"time"

	"pigpaxos"
)

func main() {
	batches := []int{1, 4, 16, 64}
	fmt.Println("25-node cluster, 200 closed-loop clients")
	fmt.Println("(batch 1 = the paper's unbatched baseline; batched runs use a 4-slot pipeline window)")
	fmt.Printf("%-10s %-8s %14s %12s %10s %12s\n",
		"system", "batch", "throughput", "mean batch", "msgs/cmd", "p99")

	for _, proto := range []pigpaxos.Protocol{pigpaxos.ProtocolPaxos, pigpaxos.ProtocolPigPaxos} {
		var base float64
		for _, b := range batches {
			r := pigpaxos.Bench(pigpaxos.BenchOptions{
				Protocol:    proto,
				N:           25,
				Clients:     200,
				RelayGroups: 3,
				BatchSize:   b,
				Warmup:      500 * time.Millisecond,
				Measure:     2 * time.Second,
			})
			if b == 1 {
				base = r.Throughput
			}
			fmt.Printf("%-10s %-8d %10.0f/s  %12.1f %10.1f %12v  (%.1fx)\n",
				proto, b, r.Throughput, r.MeanBatchSize, r.MsgsPerCmd,
				r.P99Latency.Round(100*time.Microsecond), r.Throughput/base)
		}
	}

	fmt.Println()
	fmt.Println("Batching lifts both baselines because it attacks the same bottleneck")
	fmt.Println("PigPaxos does — per-command message cost at the leader — from an")
	fmt.Println("orthogonal direction: fewer consensus rounds instead of cheaper ones.")
	fmt.Println("Batched PigPaxos stacks both effects.")
}
